//! Cluster-wide table metadata.
//!
//! The catalog holds what every node and proxy must agree on: each
//! table's schema, its *current* partition count (dynamic, §IV-B), its
//! row→partition mapping, and the shard-mapping function. It also
//! maintains the inverted index shard → partitions, which `addShard`
//! implementations use to discover "all table partitions that map to the
//! shard being migrated" (§IV-E) and to run the collision veto.

use std::collections::BTreeMap;
use std::sync::Arc;

use scalewall_sim::sync::RwLock;

use crate::error::{CubrickError, CubrickResult};
use crate::schema::Schema;
use crate::sharding::{fnv1a, ShardMapping, PARTITION_SEP};
use crate::value::{Row, Value};

/// How ingested rows are assigned to table partitions: "according to some
/// deterministic function or randomly" (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowMapping {
    /// Hash of all dimension values (deterministic, co-locates identical
    /// keys).
    Hash,
    /// Uniform random (best skew properties for append-only workloads).
    Random,
}

/// Default partition count for new tables: "a good starting point is to
/// use 8 partitions for every newly created table" (§IV-B).
pub const DEFAULT_PARTITIONS: u32 = 8;

/// Deployment-wide cap on total table size (~1 TB, §IV-B footnote).
pub const MAX_TABLE_BYTES: u64 = 1 << 40;

/// One table's registration.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: Arc<str>,
    pub schema: Arc<Schema>,
    pub partitions: u32,
    pub row_mapping: RowMapping,
    pub shard_mapping: ShardMapping,
}

impl TableDef {
    /// Shard for one of this table's partitions.
    pub fn shard_of(&self, partition: u32, max_shards: u64) -> u64 {
        self.shard_mapping
            .shard_of(&self.name, partition, max_shards)
    }

    /// The partition a row belongs to.
    ///
    /// `entropy` feeds the `Random` mapping (callers pass an RNG draw so
    /// the catalog itself stays deterministic and stateless).
    pub fn partition_of_row(&self, row: &Row, entropy: u64) -> u32 {
        match self.row_mapping {
            RowMapping::Random => (entropy % self.partitions as u64) as u32,
            RowMapping::Hash => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for v in &row.dims {
                    let piece = match v {
                        Value::Int(x) => fnv1a(&x.to_le_bytes()),
                        Value::Str(s) => fnv1a(s.as_bytes()),
                        Value::Double(d) => fnv1a(&d.to_bits().to_le_bytes()),
                        Value::Null => 0,
                    };
                    h = (h ^ piece).wrapping_mul(0x100_0000_01b3);
                }
                (h % self.partitions as u64) as u32
            }
        }
    }
}

/// The metadata store.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<Arc<str>, TableDef>,
    max_shards: u64,
    /// Inverted index: shard → (table, partition) pairs mapped to it.
    shard_index: BTreeMap<u64, Vec<(Arc<str>, u32)>>,
}

impl Catalog {
    /// `max_shards` is the SM key-space size shared by all tables
    /// ("between 100k and 1M total shards", §IV-A).
    pub fn new(max_shards: u64) -> Self {
        assert!(max_shards > 0);
        Catalog {
            tables: BTreeMap::new(),
            max_shards,
            shard_index: BTreeMap::new(),
        }
    }

    pub fn max_shards(&self) -> u64 {
        self.max_shards
    }

    /// Register a table. Rejects duplicate names and names containing the
    /// reserved `#` separator.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Arc<Schema>,
        partitions: u32,
        row_mapping: RowMapping,
        shard_mapping: ShardMapping,
    ) -> CubrickResult<TableDef> {
        if name.is_empty() || name.contains(PARTITION_SEP) {
            return Err(CubrickError::Internal {
                detail: format!("invalid table name {name:?} ('#' is reserved)"),
            });
        }
        if partitions == 0 || partitions as u64 > self.max_shards {
            return Err(CubrickError::Internal {
                detail: format!(
                    "partition count {partitions} outside [1, {}]",
                    self.max_shards
                ),
            });
        }
        let name: Arc<str> = Arc::from(name);
        if self.tables.contains_key(&name) {
            return Err(CubrickError::TableExists {
                table: name.to_string(),
            });
        }
        let def = TableDef {
            name: name.clone(),
            schema,
            partitions,
            row_mapping,
            shard_mapping,
        };
        self.index_table(&def);
        self.tables.insert(name, def.clone());
        Ok(def)
    }

    fn index_table(&mut self, def: &TableDef) {
        for p in 0..def.partitions {
            let shard = def.shard_of(p, self.max_shards);
            self.shard_index
                .entry(shard)
                .or_default()
                .push((def.name.clone(), p));
        }
    }

    fn unindex_table(&mut self, def: &TableDef) {
        for p in 0..def.partitions {
            let shard = def.shard_of(p, self.max_shards);
            if let Some(entries) = self.shard_index.get_mut(&shard) {
                entries.retain(|(t, pp)| !(t == &def.name && *pp == p));
                if entries.is_empty() {
                    self.shard_index.remove(&shard);
                }
            }
        }
    }

    pub fn drop_table(&mut self, name: &str) -> CubrickResult<TableDef> {
        let def = self
            .tables
            .remove(name)
            .ok_or_else(|| CubrickError::NoSuchTable {
                table: name.to_string(),
            })?;
        self.unindex_table(&def);
        Ok(def)
    }

    pub fn get(&self, name: &str) -> CubrickResult<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| CubrickError::NoSuchTable {
                table: name.to_string(),
            })
    }

    pub fn table_names(&self) -> impl Iterator<Item = &Arc<str>> {
        self.tables.keys()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Change a table's partition count (re-partition, §IV-B). The data
    /// shuffle is performed by [`crate::repartition`]; this only swaps the
    /// metadata and re-indexes shards. Returns the old definition.
    pub fn set_partitions(&mut self, name: &str, partitions: u32) -> CubrickResult<TableDef> {
        if partitions == 0 || partitions as u64 > self.max_shards {
            return Err(CubrickError::Internal {
                detail: format!(
                    "partition count {partitions} outside [1, {}]",
                    self.max_shards
                ),
            });
        }
        let old = self.get(name)?.clone();
        self.unindex_table(&old);
        let new = TableDef {
            partitions,
            ..old.clone()
        };
        self.index_table(&new);
        self.tables.insert(new.name.clone(), new);
        Ok(old)
    }

    /// All `(table, partition)` pairs mapped to a shard. Empty for
    /// unoccupied shards.
    pub fn partitions_of_shard(&self, shard: u64) -> &[(Arc<str>, u32)] {
        self.shard_index
            .get(&shard)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The distinct shards a table occupies.
    pub fn shards_of_table(&self, name: &str) -> CubrickResult<Vec<u64>> {
        let def = self.get(name)?;
        Ok(def
            .shard_mapping
            .shards_of_table(&def.name, def.partitions, self.max_shards))
    }
}

/// The catalog as shared by nodes, proxies and drivers.
pub type SharedCatalog = Arc<RwLock<Catalog>>;

/// Convenience constructor for a shared catalog.
pub fn shared_catalog(max_shards: u64) -> SharedCatalog {
    Arc::new(RwLock::new(Catalog::new(max_shards)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        Arc::new(
            SchemaBuilder::new()
                .int_dim("a", 0, 10, 1)
                .metric("m")
                .build()
                .unwrap(),
        )
    }

    fn catalog() -> Catalog {
        Catalog::new(100_000)
    }

    #[test]
    fn create_get_drop() {
        let mut c = catalog();
        c.create_table("t", schema(), 8, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("t").unwrap().partitions, 8);
        assert!(matches!(c.get("x"), Err(CubrickError::NoSuchTable { .. })));
        assert!(matches!(
            c.create_table("t", schema(), 8, RowMapping::Hash, ShardMapping::Monotonic),
            Err(CubrickError::TableExists { .. })
        ));
        c.drop_table("t").unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn rejects_reserved_names_and_bad_counts() {
        let mut c = catalog();
        assert!(c
            .create_table(
                "a#b",
                schema(),
                8,
                RowMapping::Hash,
                ShardMapping::Monotonic
            )
            .is_err());
        assert!(c
            .create_table("", schema(), 8, RowMapping::Hash, ShardMapping::Monotonic)
            .is_err());
        assert!(c
            .create_table("t", schema(), 0, RowMapping::Hash, ShardMapping::Monotonic)
            .is_err());
        let mut small = Catalog::new(4);
        assert!(small
            .create_table("t", schema(), 5, RowMapping::Hash, ShardMapping::Monotonic)
            .is_err());
    }

    #[test]
    fn shard_index_tracks_tables() {
        let mut c = catalog();
        let def = c
            .create_table("t", schema(), 4, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        let shards = c.shards_of_table("t").unwrap();
        assert_eq!(shards.len(), 4);
        for (p, &s) in shards.iter().enumerate() {
            let entries = c.partitions_of_shard(s);
            assert!(entries.contains(&(def.name.clone(), p as u32)));
        }
        c.drop_table("t").unwrap();
        for s in shards {
            assert!(c.partitions_of_shard(s).is_empty());
        }
    }

    #[test]
    fn repartition_reindexes() {
        let mut c = catalog();
        c.create_table("t", schema(), 8, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        let before = c.shards_of_table("t").unwrap();
        let old = c.set_partitions("t", 16).unwrap();
        assert_eq!(old.partitions, 8);
        let after = c.shards_of_table("t").unwrap();
        assert_eq!(after.len(), 16);
        // Monotonic mapping keeps the same base: prefix unchanged.
        assert_eq!(&after[..8], &before[..]);
        // Old-only shards were unindexed, new ones indexed.
        for &s in &after {
            assert!(!c.partitions_of_shard(s).is_empty());
        }
    }

    #[test]
    fn hash_row_mapping_is_deterministic_and_spread() {
        let mut c = catalog();
        let def = c
            .create_table("t", schema(), 8, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        let row = Row::new(vec![Value::Int(5)], vec![1.0]);
        assert_eq!(
            def.partition_of_row(&row, 0),
            def.partition_of_row(&row, 99)
        );
        // Different keys spread over partitions.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            let row = Row::new(vec![Value::Int(i)], vec![1.0]);
            seen.insert(def.partition_of_row(&row, 0));
        }
        assert!(
            seen.len() >= 4,
            "10 keys landed in {} partitions",
            seen.len()
        );
    }

    #[test]
    fn random_row_mapping_uses_entropy() {
        let mut c = catalog();
        let def = c
            .create_table(
                "t",
                schema(),
                8,
                RowMapping::Random,
                ShardMapping::Monotonic,
            )
            .unwrap();
        let row = Row::new(vec![Value::Int(5)], vec![1.0]);
        assert_eq!(def.partition_of_row(&row, 3), 3);
        assert_eq!(def.partition_of_row(&row, 11), 3);
        assert_eq!(def.partition_of_row(&row, 12), 4);
    }

    #[test]
    fn cross_table_partition_collisions_visible_in_index() {
        // Tiny shard space forces different tables onto shared shards.
        let mut c = Catalog::new(4);
        c.create_table("a", schema(), 4, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        c.create_table("b", schema(), 4, RowMapping::Hash, ShardMapping::Monotonic)
            .unwrap();
        let mut shared = 0;
        for s in 0..4 {
            let tables: std::collections::HashSet<&str> = c
                .partitions_of_shard(s)
                .iter()
                .map(|(t, _)| t.as_ref())
                .collect();
            if tables.len() > 1 {
                shared += 1;
            }
        }
        assert_eq!(shared, 4, "both tables occupy all 4 shards");
    }
}
