//! Consistent-hashing shard mapping.
//!
//! §IV-A: "Since the number of shards is fixed for a particular service,
//! Cubrick leverages a simple `hash(tbl) % maxShards` function ... In
//! case changing the maximum number of shards had to be supported, a
//! consistent hashing function could have been used instead."
//!
//! This module implements that alternative: a hash ring with virtual
//! nodes per shard. Its defining property — verified by tests — is that
//! growing the shard space from `N` to `N + k` remaps only ~`k/(N+k)` of
//! the partition keys, where the modulo mapping remaps almost all of
//! them.

use crate::sharding::{partition_name, stable_hash};

/// Number of ring positions per shard. More vnodes ⇒ smoother key
/// distribution at the cost of a larger ring.
pub const DEFAULT_VNODES: u32 = 16;

/// A consistent-hash ring over the shard key space `[0, shards)`.
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    /// `(ring position, shard id)`, sorted by position.
    points: Vec<(u64, u64)>,
    shards: u64,
    vnodes: u32,
}

impl ConsistentRing {
    /// Build a ring for `shards` shards with `vnodes` virtual nodes each.
    pub fn new(shards: u64, vnodes: u32) -> Self {
        assert!(shards > 0, "empty shard space");
        assert!(vnodes > 0, "need at least one vnode");
        let mut points = Vec::with_capacity((shards * vnodes as u64) as usize);
        for shard in 0..shards {
            for v in 0..vnodes {
                let pos = stable_hash(format!("shard:{shard}:{v}").as_bytes());
                points.push((pos, shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        ConsistentRing {
            points,
            shards,
            vnodes,
        }
    }

    pub fn shards(&self) -> u64 {
        self.shards
    }

    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The shard owning ring position `hash` (first point clockwise).
    fn owner(&self, hash: u64) -> u64 {
        let idx = self.points.partition_point(|&(pos, _)| pos < hash);
        if idx == self.points.len() {
            self.points[0].1 // wrap around
        } else {
            self.points[idx].1
        }
    }

    /// Shard for a table partition.
    pub fn shard_of(&self, table: &str, partition: u32) -> u64 {
        self.owner(stable_hash(partition_name(table, partition).as_bytes()))
    }

    /// All shards of a table with `partitions` partitions (may contain
    /// duplicates — consistent hashing does not prevent same-table
    /// collisions; that remains the monotonic mapping's advantage).
    pub fn shards_of_table(&self, table: &str, partitions: u32) -> Vec<u64> {
        (0..partitions).map(|p| self.shard_of(table, p)).collect()
    }

    /// Grow (or shrink) the shard space, returning the new ring.
    pub fn resized(&self, shards: u64) -> ConsistentRing {
        ConsistentRing::new(shards, self.vnodes)
    }
}

/// Fraction of a key sample that maps to a different shard in `b` than
/// in `a` (the remapping cost of a resize).
pub fn remap_fraction(a: &ConsistentRing, b: &ConsistentRing, keys: &[(String, u32)]) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let moved = keys
        .iter()
        .filter(|(t, p)| a.shard_of(t, *p) != b.shard_of(t, *p))
        .count();
    moved as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_keys(n: usize) -> Vec<(String, u32)> {
        (0..n)
            .map(|i| (format!("tbl_{}", i / 8), (i % 8) as u32))
            .collect()
    }

    #[test]
    fn deterministic_and_in_range() {
        let ring = ConsistentRing::new(1_000, DEFAULT_VNODES);
        for (t, p) in sample_keys(500) {
            let s = ring.shard_of(&t, p);
            assert!(s < 1_000);
            assert_eq!(s, ring.shard_of(&t, p), "stable per key");
        }
    }

    #[test]
    fn distribution_is_reasonably_uniform() {
        let ring = ConsistentRing::new(100, 64);
        let mut counts = vec![0usize; 100];
        for (t, p) in sample_keys(40_000) {
            counts[ring.shard_of(&t, p) as usize] += 1;
        }
        let mean = 400.0;
        let over = counts.iter().filter(|&&c| (c as f64) > mean * 2.5).count();
        assert!(over < 5, "{over} shards way over mean; counts {counts:?}");
        assert!(
            counts.iter().all(|&c| c > 0),
            "no empty shards at 64 vnodes"
        );
    }

    #[test]
    fn resize_remaps_few_keys_modulo_remaps_most() {
        let keys = sample_keys(20_000);
        let a = ConsistentRing::new(1_000, DEFAULT_VNODES);
        let b = a.resized(1_100); // +10 %
        let consistent = remap_fraction(&a, &b, &keys);
        // Theory: ~100/1100 ≈ 9 % of keys move.
        assert!(consistent < 0.2, "consistent remap {consistent}");

        // The modulo mapping remaps nearly everything on the same resize.
        let moved_modulo = keys
            .iter()
            .filter(|(t, p)| {
                crate::sharding::ShardMapping::Naive.shard_of(t, *p, 1_000)
                    != crate::sharding::ShardMapping::Naive.shard_of(t, *p, 1_100)
            })
            .count() as f64
            / keys.len() as f64;
        assert!(moved_modulo > 0.9, "modulo remap {moved_modulo}");
        assert!(consistent < moved_modulo / 4.0);
    }

    #[test]
    fn shrink_also_cheap() {
        let keys = sample_keys(10_000);
        let a = ConsistentRing::new(1_000, DEFAULT_VNODES);
        let b = a.resized(900);
        let frac = remap_fraction(&a, &b, &keys);
        assert!(frac < 0.25, "{frac}");
        // Keys never map to removed shards.
        for (t, p) in &keys {
            assert!(b.shard_of(t, *p) < 900);
        }
    }

    #[test]
    fn single_shard_ring() {
        let ring = ConsistentRing::new(1, 4);
        for (t, p) in sample_keys(50) {
            assert_eq!(ring.shard_of(&t, p), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty shard space")]
    fn zero_shards_rejected() {
        ConsistentRing::new(0, 4);
    }
}
