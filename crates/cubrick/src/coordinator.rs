//! Query-coordinator logic (§IV-C).
//!
//! "A query coordinator is required to run on a host that stores one
//! partition of the target table"; it parses and distributes the query
//! and merges partial results. The distribution itself (network, fan-out)
//! is driven by the cluster layer; this module holds the pure pieces:
//! the fan-out plan and the merge.

use crate::error::{CubrickError, CubrickResult};
use crate::query::result::{Coverage, PartialResult, QueryOutput};

/// The set of partitions a query must visit: all of them — partial
/// sharding bounds this by the *table's* partition count, not the
/// cluster size, which is the entire point of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutPlan {
    pub table: String,
    pub partitions: Vec<u32>,
}

impl FanoutPlan {
    pub fn for_table(table: &str, partition_count: u32) -> Self {
        FanoutPlan {
            table: table.to_string(),
            partitions: (0..partition_count).collect(),
        }
    }

    pub fn fan_out(&self) -> usize {
        self.partitions.len()
    }
}

/// Merge per-partition partials into the final output.
///
/// Every partition must be represented: Cubrick refuses partial answers
/// rather than trading accuracy for availability ("there are many BI and
/// data analytics workloads where this assumption cannot be made",
/// §II-C). `partials` must therefore have exactly `plan.fan_out()`
/// entries.
pub fn merge_partials(
    plan: &FanoutPlan,
    partials: Vec<PartialResult>,
) -> CubrickResult<QueryOutput> {
    if partials.len() != plan.fan_out() {
        return Err(CubrickError::Internal {
            detail: format!(
                "coordinator received {} partials for fan-out {}",
                partials.len(),
                plan.fan_out()
            ),
        });
    }
    let mut iter = partials.into_iter();
    let Some(mut merged) = iter.next() else {
        return Err(CubrickError::Internal {
            detail: "zero-partition table".into(),
        });
    };
    for partial in iter {
        merged.merge(&partial);
    }
    Ok(merged.finalize())
}

/// Degraded-mode merge (the typed opposite of [`merge_partials`]):
/// combine whatever answered, but *declare* what is missing through the
/// accompanying [`Coverage`] instead of silently returning a smaller
/// number. Invariants checked (typed errors, never panics — this file
/// is on the lint D7 panic-surface list):
///
/// * `coverage` must describe exactly the plan's partitions, and
/// * `partials.len()` must equal `coverage.answered()`.
///
/// Returns `Ok(None)` when nothing answered (zero coverage still lets
/// the caller report a typed outcome rather than fabricate zeros).
pub fn merge_degraded(
    plan: &FanoutPlan,
    partials: Vec<PartialResult>,
    coverage: &Coverage,
) -> CubrickResult<Option<QueryOutput>> {
    if coverage.total() != plan.fan_out() {
        return Err(CubrickError::Internal {
            detail: format!(
                "coverage describes {} shards for fan-out {}",
                coverage.total(),
                plan.fan_out()
            ),
        });
    }
    if partials.len() != coverage.answered() {
        return Err(CubrickError::Internal {
            detail: format!(
                "coordinator received {} partials but coverage says {} answered",
                partials.len(),
                coverage.answered()
            ),
        });
    }
    let mut iter = partials.into_iter();
    let Some(mut merged) = iter.next() else {
        return Ok(None);
    };
    for partial in iter {
        merged.merge(&partial);
    }
    Ok(Some(merged.finalize()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::agg::{AggSpec, AggState};
    use crate::query::result::{GroupVal, ShardState};

    fn partial(count: u64) -> PartialResult {
        let mut p = PartialResult::new(vec![AggSpec::count_star()], 4);
        p.groups
            .insert(vec![GroupVal::Int(1)], vec![AggState::Count(count)]);
        p.rows_scanned = count;
        p
    }

    #[test]
    fn plan_covers_all_partitions() {
        let plan = FanoutPlan::for_table("t", 8);
        assert_eq!(plan.fan_out(), 8);
        assert_eq!(plan.partitions, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn merge_requires_every_partition() {
        let plan = FanoutPlan::for_table("t", 3);
        let out = merge_partials(&plan, vec![partial(1), partial(2), partial(3)]).unwrap();
        assert_eq!(out.rows[0].aggs[0], 6.0);
        assert_eq!(out.rows_scanned, 6);
        // Missing one partial is an error — no silent partial answers.
        let err = merge_partials(&plan, vec![partial(1), partial(2)]).unwrap_err();
        assert!(matches!(err, CubrickError::Internal { .. }));
    }

    #[test]
    fn degraded_merge_declares_missing_shards() {
        let plan = FanoutPlan::for_table("t", 3);
        let mut cov = Coverage::default();
        cov.push(0, ShardState::Answered);
        cov.push(1, ShardState::TimedOut);
        cov.push(2, ShardState::Answered);
        let out = merge_degraded(&plan, vec![partial(1), partial(3)], &cov)
            .unwrap()
            .unwrap();
        assert_eq!(out.rows[0].aggs[0], 4.0, "only the answered partials merge");
        assert_eq!(cov.fraction(), 2.0 / 3.0);
    }

    #[test]
    fn degraded_merge_zero_coverage_is_none_not_zeros() {
        let plan = FanoutPlan::for_table("t", 2);
        let mut cov = Coverage::default();
        cov.push(0, ShardState::Unavailable);
        cov.push(1, ShardState::Blacklisted);
        assert_eq!(merge_degraded(&plan, vec![], &cov).unwrap(), None);
    }

    #[test]
    fn degraded_merge_rejects_inconsistent_coverage() {
        let plan = FanoutPlan::for_table("t", 2);
        // Coverage shorter than the plan.
        let mut short = Coverage::default();
        short.push(0, ShardState::Answered);
        assert!(matches!(
            merge_degraded(&plan, vec![partial(1)], &short),
            Err(CubrickError::Internal { .. })
        ));
        // Partial count disagreeing with coverage.
        let mut cov = Coverage::default();
        cov.push(0, ShardState::Answered);
        cov.push(1, ShardState::Answered);
        assert!(matches!(
            merge_degraded(&plan, vec![partial(1)], &cov),
            Err(CubrickError::Internal { .. })
        ));
    }
}
