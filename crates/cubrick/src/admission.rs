//! Multi-tenant QoS admission control (the overload-robustness layer).
//!
//! "Enhancing OLAP Resilience at LinkedIn" documents the serving stack
//! the paper's figures presuppose but never model: every query carries a
//! tenant QoS class, and on overload the proxy *sheds or queues* instead
//! of letting the fleet melt. This module is the pure policy core:
//!
//! * work-conserving weighted shares — any class may use a free slot,
//!   but each class's concurrency is capped at its weight share of the
//!   pool (rounded up, minimum one slot), so a `Batch` flood can never
//!   monopolize the slots ahead of an `Interactive` burst, while idle
//!   capacity is never held back from whoever wants it;
//! * bounded per-class FIFO queues with deterministic deadline-based
//!   timeouts (armed on the calendar-wheel [`DeadlineQueue`], expired by
//!   the experiment's event loop — never by wall clock), drained in
//!   strict priority order: `Interactive` always dequeues first;
//! * shed order follows queue headroom: `Batch` gets the smallest cap
//!   and the shortest queue, so on overload it sheds first.
//!
//! With `classful = false` the controller degrades to a single flat pool
//! plus one global FIFO — the shedding-OFF ablation — and with zero
//! queue capacity on top it is exactly the legacy `admit()` gate, which
//! is what [`AdmissionConfig::flat`] (the proxy's default) produces, so
//! pre-QoS experiments replay byte-identically.
//!
//! This file is on the lint D7 panic-surface list: no `unwrap`/`expect`/
//! panic-family macros/literal indexing outside tests.

use std::collections::VecDeque;

use scalewall_sim::{DeadlineQueue, SimDuration, SimTime};

/// Number of QoS classes.
pub const CLASS_COUNT: usize = 3;

/// Tenant QoS class, priority-ordered: `Interactive` is served first,
/// `Batch` is shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosClass {
    /// Dashboards and humans waiting on a spinner.
    Interactive,
    /// Programmatic consumers that tolerate queueing.
    BestEffort,
    /// Bulk/reporting traffic: first against the wall on overload.
    Batch,
}

impl QosClass {
    /// All classes, priority order (highest first).
    pub const ALL: [QosClass; CLASS_COUNT] =
        [QosClass::Interactive, QosClass::BestEffort, QosClass::Batch];

    pub fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::BestEffort => 1,
            QosClass::Batch => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::BestEffort => "best_effort",
            QosClass::Batch => "batch",
        }
    }
}

/// Per-class admission policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassPolicy {
    /// Fraction of `total_slots` this class may hold concurrently
    /// (rounded up, minimum one slot). Caps may oversubscribe the pool —
    /// the pool bound still applies — so idle capacity is usable by any
    /// class while no class can monopolize it.
    pub weight: f64,
    /// Queued queries this class may hold before shedding.
    pub queue_capacity: usize,
    /// How long a queued query may wait before it is timed out.
    pub queue_deadline: SimDuration,
}

/// Admission-controller tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Concurrent queries the deployment can absorb.
    pub total_slots: usize,
    /// Class-aware mode. `false` collapses to one flat pool + one global
    /// FIFO (the shedding-OFF ablation).
    pub classful: bool,
    /// Per-class policy, indexed by [`QosClass::index`].
    pub classes: [ClassPolicy; CLASS_COUNT],
    /// Shared-queue bound used when `classful` is off.
    pub flat_queue_capacity: usize,
    /// Shared-queue deadline used when `classful` is off.
    pub flat_queue_deadline: SimDuration,
}

impl AdmissionConfig {
    /// The legacy gate: one pool, no queueing — `offer` returns only
    /// `Admit` or `Shed`, exactly the old `admit()` semantics.
    pub fn flat(total_slots: usize) -> Self {
        AdmissionConfig {
            total_slots,
            classful: false,
            classes: [ClassPolicy {
                weight: 0.0,
                queue_capacity: 0,
                queue_deadline: SimDuration::ZERO,
            }; CLASS_COUNT],
            flat_queue_capacity: 0,
            flat_queue_deadline: SimDuration::ZERO,
        }
    }

    /// Flat pool with one class-blind shared FIFO: the shedding-OFF
    /// ablation of the QoS experiment.
    pub fn flat_queued(total_slots: usize, queue_capacity: usize, deadline: SimDuration) -> Self {
        AdmissionConfig {
            flat_queue_capacity: queue_capacity,
            flat_queue_deadline: deadline,
            ..AdmissionConfig::flat(total_slots)
        }
    }

    /// Production QoS defaults: `Interactive` may hold up to 60% of the
    /// pool with a short-deadline queue, `BestEffort` a quarter, `Batch`
    /// 15% with a small long-deadline queue — so on overload Batch backs
    /// up and sheds first while Interactive keeps headroom and priority.
    pub fn qos(total_slots: usize) -> Self {
        AdmissionConfig {
            total_slots,
            classful: true,
            classes: [
                ClassPolicy {
                    weight: 0.60,
                    queue_capacity: 4 * total_slots.max(1),
                    queue_deadline: SimDuration::from_secs(2),
                },
                ClassPolicy {
                    weight: 0.25,
                    queue_capacity: 4 * total_slots.max(1),
                    queue_deadline: SimDuration::from_secs(8),
                },
                ClassPolicy {
                    weight: 0.15,
                    queue_capacity: 2 * total_slots.max(1),
                    queue_deadline: SimDuration::from_secs(30),
                },
            ],
            flat_queue_capacity: 0,
            flat_queue_deadline: SimDuration::ZERO,
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::flat(10_000)
    }
}

/// Handle for a queued query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// What the controller decided for an offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run now; the caller owns a slot and must `complete` it.
    Admit,
    /// Wait in the class queue until `deadline`; the caller learns the
    /// outcome through `next_runnable` / `expire_due`.
    Queued { ticket: Ticket, deadline: SimTime },
    /// Overload: rejected outright.
    Shed,
}

/// Controller-internal counters (the experiment keeps its own richer
/// per-class stats; these exist for unit tests and debugging).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub offered: [u64; CLASS_COUNT],
    pub admitted: [u64; CLASS_COUNT],
    pub queued: [u64; CLASS_COUNT],
    pub shed: [u64; CLASS_COUNT],
    pub queue_timeouts: [u64; CLASS_COUNT],
}

#[derive(Debug, Clone, Copy)]
struct QueuedEntry {
    class: QosClass,
    enqueued_at: SimTime,
    deadline: SimTime,
}

/// The per-class weighted admission controller.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Slots the faults of the moment have taken away (capacity
    /// coupling: a region outage removes its share of serving capacity).
    slots_offline: usize,
    in_flight: [usize; CLASS_COUNT],
    /// Per-class FIFO of queued tickets. Entries are removed lazily: a
    /// ticket at the front that is no longer in `queued` was cancelled
    /// or expired and is skipped.
    queues: [VecDeque<Ticket>; CLASS_COUNT],
    /// Live queued tickets.
    queued: std::collections::BTreeMap<Ticket, QueuedEntry>,
    /// Deadline wheel for queue timeouts.
    deadlines: DeadlineQueue<Ticket>,
    due_scratch: Vec<Ticket>,
    next_ticket: u64,
    pub stats: AdmissionStats,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            slots_offline: 0,
            in_flight: [0; CLASS_COUNT],
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            queued: std::collections::BTreeMap::new(),
            deadlines: DeadlineQueue::default(),
            due_scratch: Vec::new(),
            next_ticket: 0,
            stats: AdmissionStats::default(),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Currently usable slots (total minus fault-withdrawn capacity).
    pub fn effective_slots(&self) -> usize {
        self.config.total_slots.saturating_sub(self.slots_offline)
    }

    /// Withdraw/restore serving capacity (e.g. a region outage removes
    /// that region's share of slots; its repair returns them). In-flight
    /// queries are not interrupted — the pool just refills more slowly.
    pub fn set_slots_offline(&mut self, offline: usize) {
        self.slots_offline = offline.min(self.config.total_slots);
    }

    pub fn total_in_flight(&self) -> usize {
        self.in_flight.iter().sum()
    }

    pub fn in_flight(&self, class: QosClass) -> usize {
        self.in_flight[class.index()]
    }

    /// Live queue depth for a class (cancelled/expired entries excluded).
    pub fn queue_depth(&self, class: QosClass) -> usize {
        self.queued.values().filter(|e| e.class == class).count()
    }

    fn policy(&self, class: QosClass) -> ClassPolicy {
        self.classes_policy(class.index())
    }

    fn classes_policy(&self, idx: usize) -> ClassPolicy {
        // Defensive copy through `get` keeps this file literal-index
        // free; the index is always < CLASS_COUNT by construction.
        self.config
            .classes
            .get(idx)
            .copied()
            .unwrap_or(ClassPolicy {
                weight: 0.0,
                queue_capacity: 0,
                queue_deadline: SimDuration::ZERO,
            })
    }

    /// Concurrency cap for `class`: its weight share of the effective
    /// pool, rounded up, never below one slot.
    fn class_cap(&self, class: QosClass) -> usize {
        let slots = self.effective_slots();
        ((self.policy(class).weight * slots as f64).ceil() as usize).max(1)
    }

    /// Can `class` take a slot right now? Classful mode is
    /// work-conserving: any class may use a free slot, but no class may
    /// exceed its weight-share cap — so idle capacity is never wasted
    /// and no flood monopolizes the pool.
    fn may_admit(&self, class: QosClass) -> bool {
        let slots = self.effective_slots();
        let total = self.total_in_flight();
        if total >= slots {
            return false;
        }
        if !self.config.classful {
            return true;
        }
        self.in_flight[class.index()] < self.class_cap(class)
    }

    fn queue_limits(&self, class: QosClass) -> (usize, SimDuration) {
        if self.config.classful {
            let p = self.policy(class);
            (p.queue_capacity, p.queue_deadline)
        } else {
            (
                self.config.flat_queue_capacity,
                self.config.flat_queue_deadline,
            )
        }
    }

    /// Offer a query: admit it, queue it, or shed it.
    pub fn offer(&mut self, class: QosClass, now: SimTime) -> AdmissionDecision {
        self.stats.offered[class.index()] += 1;
        if self.may_admit(class) {
            self.in_flight[class.index()] += 1;
            self.stats.admitted[class.index()] += 1;
            return AdmissionDecision::Admit;
        }
        let (capacity, deadline_after) = self.queue_limits(class);
        let depth = if self.config.classful {
            self.queue_depth(class)
        } else {
            self.queued.len()
        };
        if depth < capacity {
            let ticket = Ticket(self.next_ticket);
            self.next_ticket += 1;
            let deadline = now + deadline_after;
            self.queues[class.index()].push_back(ticket);
            self.queued.insert(
                ticket,
                QueuedEntry {
                    class,
                    enqueued_at: now,
                    deadline,
                },
            );
            self.deadlines.arm(deadline, ticket);
            self.stats.queued[class.index()] += 1;
            return AdmissionDecision::Queued { ticket, deadline };
        }
        self.stats.shed[class.index()] += 1;
        AdmissionDecision::Shed
    }

    /// Release the slot of a completed (admitted) query.
    pub fn complete(&mut self, class: QosClass) {
        let idx = class.index();
        self.in_flight[idx] = self.in_flight[idx].saturating_sub(1);
    }

    /// Expire queued tickets whose deadline has passed. Returns the
    /// expired `(ticket, class, enqueued_at)` triples in deadline order.
    pub fn expire_due(&mut self, now: SimTime, out: &mut Vec<(Ticket, QosClass, SimTime)>) {
        out.clear();
        let mut due = std::mem::take(&mut self.due_scratch);
        self.deadlines.due(now, &mut due);
        for ticket in due.drain(..) {
            if let Some(entry) = self.queued.remove(&ticket) {
                self.stats.queue_timeouts[entry.class.index()] += 1;
                out.push((ticket, entry.class, entry.enqueued_at));
            }
        }
        self.due_scratch = due;
    }

    /// Cancel a queued ticket (e.g. the caller abandoned it). Returns
    /// its class when it was still waiting.
    pub fn cancel_queued(&mut self, ticket: Ticket) -> Option<QosClass> {
        self.queued.remove(&ticket).map(|e| e.class)
    }

    /// Dequeue the next query that can run now, if any: classes in
    /// priority order (or global FIFO order when flat), skipping
    /// cancelled/expired entries. The returned ticket's query holds a
    /// slot — pair with `complete`.
    pub fn next_runnable(&mut self, now: SimTime) -> Option<(Ticket, QosClass, SimTime)> {
        if self.config.classful {
            for class in QosClass::ALL {
                if let Some(hit) = self.next_runnable_in(class, now) {
                    return Some(hit);
                }
            }
            None
        } else {
            // Flat: the live ticket with the smallest id is the global
            // FIFO head (tickets are issued monotonically).
            loop {
                let (ticket, entry) = self.queued.iter().next().map(|(&t, &e)| (t, e))?;
                if entry.deadline <= now {
                    // Deadline passed with no event in between: expire
                    // in place rather than serve a dead query.
                    self.queued.remove(&ticket);
                    self.stats.queue_timeouts[entry.class.index()] += 1;
                    continue;
                }
                if !self.may_admit(entry.class) {
                    return None;
                }
                self.queued.remove(&ticket);
                self.in_flight[entry.class.index()] += 1;
                self.stats.admitted[entry.class.index()] += 1;
                return Some((ticket, entry.class, entry.enqueued_at));
            }
        }
    }

    fn next_runnable_in(
        &mut self,
        class: QosClass,
        now: SimTime,
    ) -> Option<(Ticket, QosClass, SimTime)> {
        loop {
            let &ticket = self.queues[class.index()].front()?;
            let Some(&entry) = self.queued.get(&ticket) else {
                // Cancelled or expired: drop the stale front and retry.
                self.queues[class.index()].pop_front();
                continue;
            };
            if entry.deadline <= now {
                // Deadline passed with no event in between: expire in
                // place rather than serve a dead query.
                self.queues[class.index()].pop_front();
                self.queued.remove(&ticket);
                self.stats.queue_timeouts[class.index()] += 1;
                continue;
            }
            if !self.may_admit(class) {
                return None;
            }
            self.queues[class.index()].pop_front();
            self.queued.remove(&ticket);
            self.in_flight[class.index()] += 1;
            self.stats.admitted[class.index()] += 1;
            return Some((ticket, class, entry.enqueued_at));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn flat_mode_is_the_legacy_gate() {
        let mut c = AdmissionController::new(AdmissionConfig::flat(2));
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.offer(QosClass::Batch, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Shed);
        c.complete(QosClass::Batch);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.stats.shed[0], 1);
    }

    #[test]
    fn batch_flood_cannot_monopolize_the_pool() {
        let mut c = AdmissionController::new(AdmissionConfig::qos(8));
        // Batch floods first: its concurrency cap is ⌈0.15 × 8⌉ = 2
        // slots, its queue holds 2 × 8 = 16, and the rest sheds.
        let mut batch_admitted = 0;
        let mut batch_queued = 0;
        for _ in 0..20 {
            match c.offer(QosClass::Batch, t(0)) {
                AdmissionDecision::Admit => batch_admitted += 1,
                AdmissionDecision::Queued { .. } => batch_queued += 1,
                AdmissionDecision::Shed => {}
            }
        }
        assert_eq!(batch_admitted, 2, "batch stops at its weight-share cap");
        assert_eq!(batch_queued, 16, "then backs up into its bounded queue");
        assert_eq!(c.stats.shed[QosClass::Batch.index()], 2, "then sheds");
        // The six remaining slots are still free for interactive, up to
        // its own cap of ⌈0.6 × 8⌉ = 5.
        for _ in 0..5 {
            assert_eq!(
                c.offer(QosClass::Interactive, t(0)),
                AdmissionDecision::Admit
            );
        }
        let AdmissionDecision::Queued { .. } = c.offer(QosClass::Interactive, t(0)) else {
            panic!("interactive beyond its own cap queues");
        };
    }

    #[test]
    fn classful_mode_is_work_conserving() {
        // A lone batch tenant on an otherwise idle pool is not held
        // back by interactive's (unused) share — only by its own cap.
        let mut c = AdmissionController::new(AdmissionConfig::qos(4));
        assert_eq!(c.offer(QosClass::Batch, t(0)), AdmissionDecision::Admit);
        let AdmissionDecision::Queued { .. } = c.offer(QosClass::Batch, t(0)) else {
            panic!("cap of ⌈0.15 × 4⌉ = 1 reached, batch queues");
        };
        // Idle best-effort capacity is likewise usable immediately.
        assert_eq!(c.offer(QosClass::BestEffort, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.total_in_flight(), 2);
    }

    #[test]
    fn queue_then_dequeue_in_priority_order() {
        let mut c = AdmissionController::new(AdmissionConfig::qos(2));
        // Fill the pool with interactive (its cap ⌈0.6 × 2⌉ = 2 covers
        // both slots).
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        // Now both classes queue.
        let AdmissionDecision::Queued { ticket: tb, .. } = c.offer(QosClass::BestEffort, t(1))
        else {
            panic!("best-effort should queue");
        };
        let AdmissionDecision::Queued { ticket: ti, .. } = c.offer(QosClass::Interactive, t(2))
        else {
            panic!("interactive should queue");
        };
        assert!(tb < ti, "tickets are monotonic");
        // A slot frees: interactive dequeues first despite arriving later.
        c.complete(QosClass::Interactive);
        let (got, class, enq) = c.next_runnable(t(3)).expect("runnable");
        assert_eq!((got, class, enq), (ti, QosClass::Interactive, t(2)));
        // Next free slot goes to the queued best-effort query.
        c.complete(QosClass::Interactive);
        let (got, class, _) = c.next_runnable(t(4)).expect("runnable");
        assert_eq!((got, class), (tb, QosClass::BestEffort));
        assert!(c.next_runnable(t(5)).is_none(), "queues drained");
    }

    #[test]
    fn deadline_expiry_is_deterministic_and_boundary_exclusive() {
        let mut c = AdmissionController::new(AdmissionConfig::qos(1));
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        let AdmissionDecision::Queued { ticket, deadline } = c.offer(QosClass::Interactive, t(10))
        else {
            panic!("should queue");
        };
        assert_eq!(deadline, t(12), "qos interactive deadline is 2 s");
        let mut out = Vec::new();
        // One tick before the deadline: nothing expires.
        c.expire_due(SimTime::from_nanos(deadline.as_nanos() - 1), &mut out);
        assert!(out.is_empty());
        // At the deadline: expired.
        c.expire_due(deadline, &mut out);
        assert_eq!(out, vec![(ticket, QosClass::Interactive, t(10))]);
        assert_eq!(c.stats.queue_timeouts[0], 1);
        // The stale queue entry is skipped, not double-served.
        c.complete(QosClass::Interactive);
        assert!(c.next_runnable(t(13)).is_none());
    }

    #[test]
    fn cancelled_ticket_is_not_served_or_expired() {
        let mut c = AdmissionController::new(AdmissionConfig::qos(1));
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        let AdmissionDecision::Queued { ticket, deadline } = c.offer(QosClass::Interactive, t(0))
        else {
            panic!("should queue");
        };
        assert_eq!(c.cancel_queued(ticket), Some(QosClass::Interactive));
        assert_eq!(c.cancel_queued(ticket), None);
        let mut out = Vec::new();
        c.expire_due(deadline, &mut out);
        assert!(out.is_empty(), "cancelled ticket never expires");
        c.complete(QosClass::Interactive);
        assert!(c.next_runnable(deadline).is_none());
    }

    #[test]
    fn flat_queued_mode_is_class_blind_fifo() {
        let mut c =
            AdmissionController::new(AdmissionConfig::flat_queued(1, 4, SimDuration::from_secs(8)));
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        let AdmissionDecision::Queued { ticket: tb, .. } = c.offer(QosClass::Batch, t(1)) else {
            panic!("batch queues in flat mode");
        };
        let AdmissionDecision::Queued { .. } = c.offer(QosClass::Interactive, t(2)) else {
            panic!("interactive queues behind batch");
        };
        c.complete(QosClass::Interactive);
        let (got, class, _) = c.next_runnable(t(3)).expect("runnable");
        assert_eq!((got, class), (tb, QosClass::Batch), "FIFO ignores class");
    }

    #[test]
    fn offline_slots_shrink_capacity_and_restore() {
        let mut c = AdmissionController::new(AdmissionConfig::flat(3));
        c.set_slots_offline(2);
        assert_eq!(c.effective_slots(), 1);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Shed);
        c.set_slots_offline(0);
        assert_eq!(c.offer(QosClass::Interactive, t(0)), AdmissionDecision::Admit);
    }
}
