//! Predicates and their compilation to ordinal constraints.
//!
//! Queries carry predicates over *logical* values; each partition compiles
//! them against its own schema and dictionaries into inclusive ordinal
//! ranges per dimension. Those ranges drive both brick pruning (bucket
//! granularity) and the residual row filter (exact granularity).

use crate::error::{CubrickError, CubrickResult};
use crate::schema::{DimKind, Schema};
use crate::store::PartitionData;
use crate::value::Value;

/// Comparison forms supported on dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// `dim = value`
    Eq(Value),
    /// `dim IN (v1, v2, ...)`
    In(Vec<Value>),
    /// `dim BETWEEN lo AND hi` (inclusive; integer dimensions only).
    Between(i64, i64),
}

/// One conjunct of a query's WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub dim: String,
    pub op: PredOp,
}

impl Predicate {
    pub fn eq(dim: impl Into<String>, v: impl Into<Value>) -> Self {
        Predicate {
            dim: dim.into(),
            op: PredOp::Eq(v.into()),
        }
    }

    pub fn is_in(dim: impl Into<String>, vs: Vec<Value>) -> Self {
        Predicate {
            dim: dim.into(),
            op: PredOp::In(vs),
        }
    }

    pub fn between(dim: impl Into<String>, lo: i64, hi: i64) -> Self {
        Predicate {
            dim: dim.into(),
            op: PredOp::Between(lo, hi),
        }
    }
}

/// Compiled constraints: for each dimension (schema order), `None` =
/// unconstrained, or sorted disjoint inclusive ordinal ranges.
///
/// `satisfiable == false` means some predicate can never match in this
/// partition (e.g. a string literal absent from the dictionary) — the
/// partition contributes an empty result without scanning.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicates {
    pub per_dim: Vec<Option<Vec<(u32, u32)>>>,
    pub satisfiable: bool,
}

impl CompiledPredicates {
    /// Whether a row (as ordinals) passes all constraints.
    pub fn row_matches(&self, ordinals: &[u32]) -> bool {
        self.per_dim.iter().zip(ordinals).all(|(c, &ord)| match c {
            None => true,
            Some(ranges) => ranges.iter().any(|&(lo, hi)| lo <= ord && ord <= hi),
        })
    }
}

/// Normalize ranges: sort, merge overlaps/adjacency.
fn normalize(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.retain(|&(lo, hi)| lo <= hi);
    ranges.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Intersect two normalized range sets.
fn intersect(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Ordinal ranges matched by one predicate value on one dimension.
fn value_ranges(
    partition: &PartitionData,
    schema: &Schema,
    dim_idx: usize,
    v: &Value,
) -> CubrickResult<Vec<(u32, u32)>> {
    let dim = &schema.dimensions[dim_idx];
    match (&dim.kind, v) {
        (DimKind::Int { .. }, Value::Int(x)) => match dim.int_ordinal(*x) {
            Ok(ord) => Ok(vec![(ord, ord)]),
            // Out-of-range literal matches nothing (not an error: the
            // query is valid, the value just cannot exist).
            Err(CubrickError::ValueOutOfRange { .. }) => Ok(vec![]),
            Err(e) => Err(e),
        },
        (DimKind::Str { .. }, Value::Str(s)) => {
            Ok(match partition.dict(dim_idx).and_then(|d| d.lookup(s)) {
                Some(id) => vec![(id, id)],
                None => vec![], // string never ingested here
            })
        }
        (DimKind::Int { .. }, _) => Err(CubrickError::TypeMismatch {
            column: dim.name.clone(),
            expected: "int",
        }),
        (DimKind::Str { .. }, _) => Err(CubrickError::TypeMismatch {
            column: dim.name.clone(),
            expected: "string",
        }),
    }
}

/// Compile a conjunction of predicates against one partition.
pub fn compile(
    partition: &PartitionData,
    predicates: &[Predicate],
) -> CubrickResult<CompiledPredicates> {
    let schema = partition.schema().clone();
    let mut per_dim: Vec<Option<Vec<(u32, u32)>>> = vec![None; schema.dimensions.len()];
    let mut satisfiable = true;

    for pred in predicates {
        let dim_idx = schema
            .dim_index(&pred.dim)
            .ok_or_else(|| CubrickError::NoSuchColumn {
                table: String::new(),
                column: pred.dim.clone(),
            })?;
        let ranges: Vec<(u32, u32)> = match &pred.op {
            PredOp::Eq(v) => value_ranges(partition, &schema, dim_idx, v)?,
            PredOp::In(vs) => {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(value_ranges(partition, &schema, dim_idx, v)?);
                }
                all
            }
            PredOp::Between(lo, hi) => {
                let dim = &schema.dimensions[dim_idx];
                match dim.kind {
                    DimKind::Int { min, max } => {
                        let lo_c = (*lo).max(min);
                        let hi_c = (*hi).min(max - 1);
                        if lo_c > hi_c {
                            vec![]
                        } else {
                            vec![(
                                dim.int_ordinal(lo_c).expect("clamped"),
                                dim.int_ordinal(hi_c).expect("clamped"),
                            )]
                        }
                    }
                    DimKind::Str { .. } => {
                        return Err(CubrickError::InvalidQuery {
                            detail: format!("BETWEEN on string dimension {:?}", pred.dim),
                        })
                    }
                }
            }
        };
        let ranges = normalize(ranges);
        let merged = match &per_dim[dim_idx] {
            None => ranges,
            Some(existing) => intersect(existing, &ranges),
        };
        if merged.is_empty() {
            satisfiable = false;
        }
        per_dim[dim_idx] = Some(merged);
    }
    Ok(CompiledPredicates {
        per_dim,
        satisfiable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Row;
    use std::sync::Arc;

    fn partition() -> PartitionData {
        let schema = Arc::new(
            SchemaBuilder::new()
                .int_dim("ds", 0, 100, 10)
                .str_dim("country", 100, 10)
                .metric("m")
                .build()
                .unwrap(),
        );
        let mut p = PartitionData::new(schema);
        for ds in 0..50 {
            for c in ["US", "BR"] {
                p.ingest(&Row::new(vec![Value::Int(ds), Value::from(c)], vec![1.0]))
                    .unwrap();
            }
        }
        p
    }

    #[test]
    fn normalize_merges() {
        assert_eq!(normalize(vec![(5, 9), (0, 3), (4, 4)]), vec![(0, 9)]);
        assert_eq!(normalize(vec![(0, 2), (5, 7)]), vec![(0, 2), (5, 7)]);
        assert_eq!(normalize(vec![(3, 1)]), Vec::<(u32, u32)>::new());
    }

    #[test]
    fn intersect_works() {
        assert_eq!(intersect(&[(0, 10)], &[(5, 20)]), vec![(5, 10)]);
        assert_eq!(
            intersect(&[(0, 3), (8, 12)], &[(2, 9)]),
            vec![(2, 3), (8, 9)]
        );
        assert_eq!(intersect(&[(0, 3)], &[(5, 9)]), vec![]);
    }

    #[test]
    fn eq_int_compiles_to_point() {
        let p = partition();
        let c = compile(&p, &[Predicate::eq("ds", 42i64)]).unwrap();
        assert_eq!(c.per_dim[0], Some(vec![(42, 42)]));
        assert_eq!(c.per_dim[1], None);
        assert!(c.satisfiable);
        assert!(c.row_matches(&[42, 0]));
        assert!(!c.row_matches(&[41, 0]));
    }

    #[test]
    fn eq_string_uses_dictionary() {
        let p = partition();
        let c = compile(&p, &[Predicate::eq("country", "BR")]).unwrap();
        let id = p.dict(1).unwrap().lookup("BR").unwrap();
        assert_eq!(c.per_dim[1], Some(vec![(id, id)]));
    }

    #[test]
    fn missing_string_is_unsatisfiable() {
        let p = partition();
        let c = compile(&p, &[Predicate::eq("country", "JP")]).unwrap();
        assert!(!c.satisfiable);
    }

    #[test]
    fn in_merges_adjacent_values() {
        let p = partition();
        let c = compile(
            &p,
            &[Predicate::is_in(
                "ds",
                vec![Value::Int(3), Value::Int(4), Value::Int(9)],
            )],
        )
        .unwrap();
        assert_eq!(c.per_dim[0], Some(vec![(3, 4), (9, 9)]));
    }

    #[test]
    fn between_clamps_to_dimension_range() {
        let p = partition();
        let c = compile(&p, &[Predicate::between("ds", -5, 12)]).unwrap();
        assert_eq!(c.per_dim[0], Some(vec![(0, 12)]));
        let c = compile(&p, &[Predicate::between("ds", 150, 200)]).unwrap();
        assert!(!c.satisfiable);
    }

    #[test]
    fn between_on_string_rejected() {
        let p = partition();
        assert!(matches!(
            compile(&p, &[Predicate::between("country", 0, 1)]),
            Err(CubrickError::InvalidQuery { .. })
        ));
    }

    #[test]
    fn conjunction_on_same_dim_intersects() {
        let p = partition();
        let c = compile(
            &p,
            &[
                Predicate::between("ds", 0, 20),
                Predicate::between("ds", 10, 30),
            ],
        )
        .unwrap();
        assert_eq!(c.per_dim[0], Some(vec![(10, 20)]));
        // Disjoint conjunction → unsatisfiable.
        let c = compile(
            &p,
            &[
                Predicate::between("ds", 0, 5),
                Predicate::between("ds", 50, 60),
            ],
        )
        .unwrap();
        assert!(!c.satisfiable);
    }

    #[test]
    fn unknown_column_and_type_mismatch() {
        let p = partition();
        assert!(matches!(
            compile(&p, &[Predicate::eq("nope", 1i64)]),
            Err(CubrickError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            compile(&p, &[Predicate::eq("ds", "x")]),
            Err(CubrickError::TypeMismatch { .. })
        ));
        assert!(matches!(
            compile(&p, &[Predicate::eq("country", 3i64)]),
            Err(CubrickError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_int_literal_matches_nothing() {
        let p = partition();
        let c = compile(&p, &[Predicate::eq("ds", 5_000i64)]).unwrap();
        assert!(!c.satisfiable);
    }
}
