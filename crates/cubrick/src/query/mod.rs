//! The query layer.
//!
//! Cubrick queries are aggregations over one table with conjunctive
//! per-dimension filters and optional group-by — the OLAP shape its
//! dashboards issue. The layer is split the way the system executes:
//!
//! * [`expr`] — predicate AST and per-partition compilation to ordinal
//!   ranges (the input to brick pruning).
//! * [`agg`] — aggregate functions and their mergeable accumulators.
//! * [`exec`] — single-partition execution against a
//!   [`PartitionData`](crate::store::PartitionData): prune bricks, filter
//!   rows, accumulate groups. Runs on every server holding a partition.
//! * [`result`] — partial results and coordinator-side merging.
//! * [`parser`] — the textual query dialect used by examples and tools.

pub mod agg;
pub mod exec;
pub mod expr;
pub mod parser;
pub mod result;

pub use agg::{AggFunc, AggSpec, AggState};
pub use exec::execute_partition;
pub use expr::{PredOp, Predicate};
pub use parser::parse_query;
pub use result::{Coverage, PartialResult, QueryOutput, ResultRow, ShardState, ShardStatus};

/// A logical query: aggregations over one table, conjunctive filters,
/// optional group-by, optional top-N (`ORDER BY ... LIMIT n`).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub table: String,
    pub aggs: Vec<AggSpec>,
    pub predicates: Vec<Predicate>,
    /// Dimension names to group by (result rows carry them in order).
    pub group_by: Vec<String>,
    /// Result ordering (applied by the coordinator after the merge —
    /// exact top-N needs every group, so nothing is pushed down).
    pub order_by: Option<OrderBy>,
    /// Row cap applied after ordering.
    pub limit: Option<usize>,
}

/// What an `ORDER BY` sorts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderTarget {
    /// Index into `Query::aggs`.
    Agg(usize),
    /// Index into `Query::group_by`.
    Dim(usize),
}

/// A result ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderBy {
    pub target: OrderTarget,
    pub descending: bool,
}

impl Query {
    /// A full-table `count(*)`, the simplest well-formed query.
    pub fn count_star(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            aggs: vec![AggSpec {
                func: AggFunc::Count,
                metric: None,
            }],
            predicates: Vec::new(),
            group_by: Vec::new(),
            order_by: None,
            limit: None,
        }
    }

    /// Apply this query's ordering and limit to a merged output.
    /// The default (no `ORDER BY`) keeps the deterministic
    /// group-key order `finalize` produces.
    pub fn apply_order_limit(&self, output: &mut result::QueryOutput) {
        if let Some(order) = self.order_by {
            let cmp = |a: &result::ResultRow, b: &result::ResultRow| -> std::cmp::Ordering {
                let ord = match order.target {
                    OrderTarget::Agg(i) => a.aggs[i].total_cmp(&b.aggs[i]),
                    OrderTarget::Dim(i) => crate::value::cmp_values(&a.key[i], &b.key[i]),
                };
                if order.descending {
                    ord.reverse()
                } else {
                    ord
                }
            };
            output.rows.sort_by(cmp);
        }
        if let Some(limit) = self.limit {
            output.rows.truncate(limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_star_shape() {
        let q = Query::count_star("t");
        assert_eq!(q.table, "t");
        assert_eq!(q.aggs.len(), 1);
        assert!(q.predicates.is_empty());
        assert!(q.group_by.is_empty());
        assert!(q.order_by.is_none() && q.limit.is_none());
    }

    #[test]
    fn order_and_limit_application() {
        use crate::value::Value;
        let mut q = Query::count_star("t");
        q.aggs = vec![AggSpec::count_star()];
        q.group_by = vec!["d".into()];
        q.order_by = Some(OrderBy {
            target: OrderTarget::Agg(0),
            descending: true,
        });
        q.limit = Some(2);
        let mut out = result::QueryOutput {
            columns: vec!["count(*)".into()],
            rows: vec![
                result::ResultRow {
                    key: vec![Value::Str("a".into())],
                    aggs: vec![1.0],
                },
                result::ResultRow {
                    key: vec![Value::Str("b".into())],
                    aggs: vec![9.0],
                },
                result::ResultRow {
                    key: vec![Value::Str("c".into())],
                    aggs: vec![5.0],
                },
            ],
            rows_scanned: 15,
            table_partitions: 8,
        };
        q.apply_order_limit(&mut out);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].aggs[0], 9.0);
        assert_eq!(out.rows[1].aggs[0], 5.0);

        // Dim ordering, ascending.
        q.order_by = Some(OrderBy {
            target: OrderTarget::Dim(0),
            descending: false,
        });
        q.limit = None;
        q.apply_order_limit(&mut out);
        assert_eq!(out.rows[0].key[0], Value::Str("b".into()));
    }
}
