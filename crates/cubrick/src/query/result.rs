//! Partial results and coordinator-side merging.
//!
//! Every server executes the query over its local partitions and returns
//! a [`PartialResult`]: group keys (already decoded to logical values —
//! dictionary ids are partition-local and must not cross the wire) plus
//! mergeable accumulators. The coordinator merges partials and finalizes
//! into a [`QueryOutput`].
//!
//! Result metadata carries the table's current partition count: "the
//! number of partitions per table is always included as part of query
//! results metadata, and updates the proxy's cache" (§IV-C).

use std::collections::BTreeMap;

use crate::query::agg::{AggSpec, AggState};
use crate::value::Value;

/// A group key: decoded dimension values, hashable/orderable.
///
/// Group keys are dimensions only, so they are ints or strings — never
/// floats — which is what makes `Eq`/`Hash`/`Ord` sound here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupVal {
    Int(i64),
    Str(String),
}

impl From<&GroupVal> for Value {
    fn from(g: &GroupVal) -> Value {
        match g {
            GroupVal::Int(v) => Value::Int(*v),
            GroupVal::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// Partial result from one partition (or a merge of several).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResult {
    pub aggs: Vec<AggSpec>,
    /// Group key → accumulators (one per agg, spec order). The ungrouped
    /// query uses the single empty key.
    pub groups: BTreeMap<Vec<GroupVal>, Vec<AggState>>,
    /// Rows that survived filters on this partition.
    pub rows_scanned: u64,
    /// Current partition count of the table (proxy cache refresh).
    pub table_partitions: u32,
}

impl PartialResult {
    pub fn new(aggs: Vec<AggSpec>, table_partitions: u32) -> Self {
        PartialResult {
            aggs,
            groups: BTreeMap::new(),
            rows_scanned: 0,
            table_partitions,
        }
    }

    /// Merge another partial into this one. Panics if the agg lists
    /// differ (partials must come from the same query).
    pub fn merge(&mut self, other: &PartialResult) {
        assert_eq!(
            self.aggs, other.aggs,
            "merging partials from different queries"
        );
        self.rows_scanned += other.rows_scanned;
        self.table_partitions = self.table_partitions.max(other.table_partitions);
        for (key, states) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(key.clone(), states.clone());
                }
            }
        }
    }

    /// Finalize into ordered output rows.
    pub fn finalize(&self) -> QueryOutput {
        let mut rows: Vec<ResultRow> = self
            .groups
            .iter()
            .map(|(key, states)| ResultRow {
                key: key.iter().map(Value::from).collect(),
                aggs: states.iter().map(AggState::finalize).collect(),
            })
            .collect();
        // Deterministic output order: by group key.
        let mut keyed: Vec<(Vec<GroupVal>, ResultRow)> =
            self.groups.keys().cloned().zip(rows.drain(..)).collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        QueryOutput {
            columns: self.aggs.iter().map(AggSpec::label).collect(),
            rows: keyed.into_iter().map(|(_, r)| r).collect(),
            rows_scanned: self.rows_scanned,
            table_partitions: self.table_partitions,
        }
    }
}

/// Why a shard's sub-query did (or did not) contribute to a degraded
/// result (the typed per-shard status of best-effort serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The sub-query answered and its partial was merged.
    Answered,
    /// The sub-query exceeded its per-shard deadline.
    TimedOut,
    /// The shard's owner was unreachable, not owning, or still loading.
    Unavailable,
    /// The resolved host was blacklisted at the proxy; never contacted.
    Blacklisted,
}

/// Per-shard status of a (possibly degraded) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    pub partition: u32,
    pub state: ShardState,
}

/// The coverage contract of a degraded-mode answer: which partitions
/// contributed, and why the rest are missing. `coverage_fraction` is
/// the headline number a client checks against its accuracy budget.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Coverage {
    /// One entry per planned partition, plan order.
    pub per_shard: Vec<ShardStatus>,
}

impl Coverage {
    pub fn push(&mut self, partition: u32, state: ShardState) {
        self.per_shard.push(ShardStatus { partition, state });
    }

    /// Partitions that answered.
    pub fn answered(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|s| s.state == ShardState::Answered)
            .count()
    }

    pub fn total(&self) -> usize {
        self.per_shard.len()
    }

    /// Fraction of planned partitions that answered (1.0 for an empty
    /// plan: nothing was missing).
    pub fn fraction(&self) -> f64 {
        if self.per_shard.is_empty() {
            1.0
        } else {
            self.answered() as f64 / self.total() as f64
        }
    }

    pub fn complete(&self) -> bool {
        self.answered() == self.total()
    }
}

/// One output row: group key values followed by finalized aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    pub key: Vec<Value>,
    pub aggs: Vec<f64>,
}

/// Final, merged, finalized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Aggregate column labels (group-by columns precede them in `rows`).
    pub columns: Vec<String>,
    pub rows: Vec<ResultRow>,
    pub rows_scanned: u64,
    pub table_partitions: u32,
}

impl QueryOutput {
    /// The single scalar of an ungrouped single-agg query.
    pub fn scalar(&self) -> Option<f64> {
        match self.rows.as_slice() {
            [row] if row.key.is_empty() && row.aggs.len() == 1 => Some(row.aggs[0]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::agg::AggFunc;

    fn spec() -> Vec<AggSpec> {
        vec![AggSpec::count_star(), AggSpec::new(AggFunc::Sum, "m")]
    }

    fn partial_with(groups: Vec<(Vec<GroupVal>, u64, f64)>) -> PartialResult {
        let mut p = PartialResult::new(spec(), 8);
        for (key, count, sum) in groups {
            p.groups
                .insert(key, vec![AggState::Count(count), AggState::Sum(sum)]);
            p.rows_scanned += count;
        }
        p
    }

    #[test]
    fn merge_combines_groups() {
        let mut a = partial_with(vec![
            (vec![GroupVal::Str("US".into())], 2, 10.0),
            (vec![GroupVal::Str("BR".into())], 1, 5.0),
        ]);
        let b = partial_with(vec![
            (vec![GroupVal::Str("US".into())], 3, 7.0),
            (vec![GroupVal::Str("JP".into())], 4, 1.0),
        ]);
        a.merge(&b);
        assert_eq!(a.groups.len(), 3);
        assert_eq!(
            a.groups[&vec![GroupVal::Str("US".into())]],
            vec![AggState::Count(5), AggState::Sum(17.0)]
        );
        assert_eq!(a.rows_scanned, 10);
    }

    #[test]
    fn merge_takes_max_partition_count() {
        // During a re-partition different servers may report different
        // counts; the proxy should learn the newest (largest... the rule
        // here: max) one.
        let mut a = PartialResult::new(spec(), 8);
        let b = PartialResult::new(spec(), 16);
        a.merge(&b);
        assert_eq!(a.table_partitions, 16);
    }

    #[test]
    fn finalize_sorted_and_labelled() {
        let p = partial_with(vec![
            (vec![GroupVal::Str("US".into())], 2, 10.0),
            (vec![GroupVal::Str("BR".into())], 1, 5.0),
        ]);
        let out = p.finalize();
        assert_eq!(out.columns, vec!["count(*)", "sum(m)"]);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].key, vec![Value::Str("BR".into())]);
        assert_eq!(out.rows[1].key, vec![Value::Str("US".into())]);
        assert_eq!(out.rows[1].aggs, vec![2.0, 10.0]);
    }

    #[test]
    fn scalar_extraction() {
        let mut p = PartialResult::new(vec![AggSpec::count_star()], 8);
        p.groups.insert(vec![], vec![AggState::Count(7)]);
        assert_eq!(p.finalize().scalar(), Some(7.0));
        // Grouped output has no scalar.
        let p = partial_with(vec![(vec![GroupVal::Int(1)], 1, 1.0)]);
        assert_eq!(p.finalize().scalar(), None);
    }

    #[test]
    fn coverage_accounting() {
        let mut c = Coverage::default();
        assert_eq!(c.fraction(), 1.0, "empty plan is fully covered");
        c.push(0, ShardState::Answered);
        c.push(1, ShardState::TimedOut);
        c.push(2, ShardState::Blacklisted);
        c.push(3, ShardState::Answered);
        assert_eq!(c.answered(), 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.fraction(), 0.5);
        assert!(!c.complete());
        let full = Coverage {
            per_shard: vec![ShardStatus {
                partition: 0,
                state: ShardState::Answered,
            }],
        };
        assert!(full.complete());
        assert_eq!(full.fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "different queries")]
    fn merge_mismatched_specs_panics() {
        let mut a = PartialResult::new(vec![AggSpec::count_star()], 8);
        let b = PartialResult::new(spec(), 8);
        a.merge(&b);
    }
}
