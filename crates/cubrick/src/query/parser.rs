//! The textual query dialect.
//!
//! A small SQL subset covering the OLAP shape Cubrick serves:
//!
//! ```text
//! SELECT sum(clicks), count(*)
//! FROM   ad_events
//! WHERE  country = 'US' AND ds BETWEEN 20 AND 40 AND app IN ('a', 'b')
//! GROUP BY country, ds
//! ORDER BY sum(clicks) DESC
//! LIMIT 10
//! ```
//!
//! Hand-rolled tokenizer + recursive descent; keywords are
//! case-insensitive, identifiers are case-sensitive.

use crate::error::{CubrickError, CubrickResult};
use crate::query::agg::{AggFunc, AggSpec};
use crate::query::expr::{PredOp, Predicate};
use crate::query::{OrderBy, OrderTarget, Query};
use crate::value::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
}

struct Tokenizer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Tokenizer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, detail: impl Into<String>) -> CubrickError {
        CubrickError::Parse {
            detail: detail.into(),
            position: self.pos,
        }
    }

    fn tokenize(mut self) -> CubrickResult<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Token::LParen, start));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Token::RParen, start));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Token::Comma, start));
                    self.pos += 1;
                }
                b'*' => {
                    out.push((Token::Star, start));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((Token::Eq, start));
                    self.pos += 1;
                }
                b'\'' => {
                    self.pos += 1;
                    let str_start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    out.push((Token::Str(self.src[str_start..self.pos].to_string()), start));
                    self.pos += 1; // closing quote
                }
                b'0'..=b'9' | b'-' | b'+' => {
                    self.pos += 1;
                    let mut is_float = false;
                    while self.pos < self.bytes.len() {
                        match self.bytes[self.pos] {
                            b'0'..=b'9' => self.pos += 1,
                            b'.' if !is_float => {
                                is_float = true;
                                self.pos += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = &self.src[start..self.pos];
                    let token = if is_float {
                        Token::Float(
                            text.parse()
                                .map_err(|_| self.error(format!("bad number {text:?}")))?,
                        )
                    } else {
                        Token::Int(
                            text.parse()
                                .map_err(|_| self.error(format!("bad number {text:?}")))?,
                        )
                    };
                    out.push((token, start));
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    while self.pos < self.bytes.len()
                        && matches!(self.bytes[self.pos], b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                    {
                        self.pos += 1;
                    }
                    out.push((Token::Ident(self.src[start..self.pos].to_string()), start));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn error(&self, detail: impl Into<String>) -> CubrickError {
        let position = self
            .tokens
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(usize::MAX);
        CubrickError::Parse {
            detail: detail.into(),
            position,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> CubrickResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, expected: &Token, what: &str) -> CubrickResult<()> {
        let t = self.next()?;
        if &t == expected {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {t:?}")))
        }
    }

    /// Consume a keyword (case-insensitive ident) or fail.
    fn keyword(&mut self, kw: &str) -> CubrickResult<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    /// Check whether the next token is the given keyword (without
    /// consuming on mismatch).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> CubrickResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> CubrickResult<Value> {
        match self.next()? {
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Float(v) => Ok(Value::Double(v)),
            Token::Str(s) => Ok(Value::Str(s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn agg(&mut self) -> CubrickResult<AggSpec> {
        let name = self.ident("aggregate function")?;
        let func = match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            other => return Err(self.error(format!("unknown aggregate {other:?}"))),
        };
        self.expect(&Token::LParen, "'('")?;
        let spec = match self.peek() {
            Some(Token::Star) => {
                self.next()?;
                if func != AggFunc::Count {
                    return Err(self.error(format!("{}(*) is not supported", func.name())));
                }
                AggSpec::count_star()
            }
            _ => {
                let metric = self.ident("metric name")?;
                AggSpec {
                    func,
                    metric: Some(metric),
                }
            }
        };
        self.expect(&Token::RParen, "')'")?;
        Ok(spec)
    }

    fn predicate(&mut self) -> CubrickResult<Predicate> {
        let dim = self.ident("dimension name")?;
        match self.next()? {
            Token::Eq => Ok(Predicate {
                dim,
                op: PredOp::Eq(self.literal()?),
            }),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("in") => {
                self.expect(&Token::LParen, "'('")?;
                let mut values = vec![self.literal()?];
                while self.peek() == Some(&Token::Comma) {
                    self.next()?;
                    values.push(self.literal()?);
                }
                self.expect(&Token::RParen, "')'")?;
                Ok(Predicate {
                    dim,
                    op: PredOp::In(values),
                })
            }
            Token::Ident(kw) if kw.eq_ignore_ascii_case("between") => {
                let lo = match self.literal()? {
                    Value::Int(v) => v,
                    _ => return Err(self.error("BETWEEN bounds must be integers")),
                };
                self.keyword("and")?;
                let hi = match self.literal()? {
                    Value::Int(v) => v,
                    _ => return Err(self.error("BETWEEN bounds must be integers")),
                };
                Ok(Predicate {
                    dim,
                    op: PredOp::Between(lo, hi),
                })
            }
            other => Err(self.error(format!("expected '=', IN or BETWEEN, found {other:?}"))),
        }
    }

    fn query(&mut self) -> CubrickResult<Query> {
        self.keyword("select")?;
        let mut aggs = vec![self.agg()?];
        while self.peek() == Some(&Token::Comma) {
            self.next()?;
            aggs.push(self.agg()?);
        }
        self.keyword("from")?;
        let table = self.ident("table name")?;

        let mut predicates = Vec::new();
        if self.at_keyword("where") {
            self.next()?;
            predicates.push(self.predicate()?);
            while self.at_keyword("and") {
                self.next()?;
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if self.at_keyword("group") {
            self.next()?;
            self.keyword("by")?;
            group_by.push(self.ident("dimension name")?);
            while self.peek() == Some(&Token::Comma) {
                self.next()?;
                group_by.push(self.ident("dimension name")?);
            }
        }

        let mut order_by = None;
        if self.at_keyword("order") {
            self.next()?;
            self.keyword("by")?;
            // Target: either an aggregate call matching one in the SELECT
            // list, or a group-by dimension name.
            let target = if let Some(Token::Ident(name)) = self.peek() {
                let lowered = name.to_ascii_lowercase();
                let is_agg = matches!(lowered.as_str(), "count" | "sum" | "min" | "max" | "avg")
                    && self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Token::LParen);
                if is_agg {
                    let spec = self.agg()?;
                    let idx = aggs.iter().position(|a| *a == spec).ok_or_else(|| {
                        self.error(format!(
                            "ORDER BY {} must appear in the SELECT list",
                            spec.label()
                        ))
                    })?;
                    OrderTarget::Agg(idx)
                } else {
                    let dim = self.ident("order-by column")?;
                    let idx = group_by.iter().position(|g| *g == dim).ok_or_else(|| {
                        self.error(format!("ORDER BY {dim:?} must be a GROUP BY column"))
                    })?;
                    OrderTarget::Dim(idx)
                }
            } else {
                return Err(self.error("expected ORDER BY target"));
            };
            let descending = if self.at_keyword("desc") {
                self.next()?;
                true
            } else {
                if self.at_keyword("asc") {
                    self.next()?;
                }
                false
            };
            order_by = Some(OrderBy { target, descending });
        }

        let mut limit = None;
        if self.at_keyword("limit") {
            self.next()?;
            match self.next()? {
                Token::Int(n) if n >= 0 => limit = Some(n as usize),
                other => return Err(self.error(format!("LIMIT expects a count, found {other:?}"))),
            }
        }

        if self.pos != self.tokens.len() {
            return Err(self.error("trailing tokens after query"));
        }
        Ok(Query {
            table,
            aggs,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }
}

/// Parse query text into a [`Query`].
pub fn parse_query(text: &str) -> CubrickResult<Query> {
    let tokens = Tokenizer::new(text).tokenize()?;
    Parser { tokens, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse_query("SELECT count(*) FROM t").unwrap();
        assert_eq!(q, Query::count_star("t"));
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse_query(
            "select sum(clicks), count(*) from t group by app              order by sum(clicks) desc limit 10",
        )
        .unwrap();
        assert_eq!(
            q.order_by,
            Some(OrderBy {
                target: OrderTarget::Agg(0),
                descending: true
            })
        );
        assert_eq!(q.limit, Some(10));

        let q = parse_query("select count(*) from t group by app order by app asc").unwrap();
        assert_eq!(
            q.order_by,
            Some(OrderBy {
                target: OrderTarget::Dim(0),
                descending: false
            })
        );
        assert_eq!(q.limit, None);

        // Default direction is ascending.
        let q = parse_query("select count(*) from t group by app order by count(*)").unwrap();
        assert!(!q.order_by.unwrap().descending);

        // LIMIT without ORDER BY is allowed (caps the deterministic order).
        let q = parse_query("select count(*) from t limit 5").unwrap();
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn order_by_errors() {
        for bad in [
            "select count(*) from t order by sum(x)", // not in SELECT
            "select count(*) from t group by a order by b", // not grouped
            "select count(*) from t order by",        // missing target
            "select count(*) from t limit 'x'",       // bad limit
            "select count(*) from t limit -3",        // negative limit
        ] {
            let err = parse_query(bad).unwrap_err();
            assert!(
                matches!(err, CubrickError::Parse { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn full_query() {
        let q = parse_query(
            "select sum(clicks), avg(cost), count(*) from ad_events \
             where country = 'US' and ds between 20 and 40 and app in ('a','b') \
             group by country, ds",
        )
        .unwrap();
        assert_eq!(q.table, "ad_events");
        assert_eq!(q.aggs.len(), 3);
        assert_eq!(q.aggs[0], AggSpec::new(AggFunc::Sum, "clicks"));
        assert_eq!(q.aggs[2], AggSpec::count_star());
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[0], Predicate::eq("country", "US"));
        assert_eq!(q.predicates[1], Predicate::between("ds", 20, 40));
        assert_eq!(
            q.predicates[2],
            Predicate::is_in("app", vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(q.group_by, vec!["country", "ds"]);
    }

    #[test]
    fn keywords_case_insensitive_idents_not() {
        let q = parse_query("SeLeCt CoUnT(*) FrOm MyTable WHERE Dim = 1").unwrap();
        assert_eq!(q.table, "MyTable");
        assert_eq!(q.predicates[0].dim, "Dim");
    }

    #[test]
    fn numeric_literals() {
        let q = parse_query("select count(*) from t where a = -5 and b = 2.5").unwrap();
        assert_eq!(q.predicates[0].op, PredOp::Eq(Value::Int(-5)));
        assert_eq!(q.predicates[1].op, PredOp::Eq(Value::Double(2.5)));
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "select",
            "select frobnicate(x) from t",
            "select sum(*) from t",
            "select count(*) from t where",
            "select count(*) from t where a >< 3",
            "select count(*) from t where s = 'unterminated",
            "select count(*) from t group by",
            "select count(*) from t trailing",
            "select count(*) from t where a between 'x' and 3",
            "select count(*) from t where a in ()",
            "select count(*) @ t",
        ] {
            let err = parse_query(bad).unwrap_err();
            assert!(
                matches!(err, CubrickError::Parse { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn error_position_points_at_problem() {
        let err = parse_query("select count(*) from t junk").unwrap_err();
        match err {
            CubrickError::Parse { position, .. } => assert_eq!(position, 23),
            other => panic!("{other:?}"),
        }
    }
}
