//! Aggregate functions and mergeable accumulators.
//!
//! Aggregation state must be *mergeable*, because every partition produces
//! a partial result that the query coordinator merges (§IV-C): `avg` is
//! therefore carried as `(sum, count)` until finalization.

use crate::error::{CubrickError, CubrickResult};
use crate::schema::Schema;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregation in a query's SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Metric name; `None` only for `count(*)`.
    pub metric: Option<String>,
}

impl AggSpec {
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::Count,
            metric: None,
        }
    }

    pub fn new(func: AggFunc, metric: impl Into<String>) -> Self {
        AggSpec {
            func,
            metric: Some(metric.into()),
        }
    }

    /// Resolve the metric column index, validating against the schema.
    pub fn metric_index(&self, schema: &Schema, table: &str) -> CubrickResult<Option<usize>> {
        match &self.metric {
            None => {
                if self.func == AggFunc::Count {
                    Ok(None)
                } else {
                    Err(CubrickError::InvalidQuery {
                        detail: format!("{}(*) is not supported", self.func.name()),
                    })
                }
            }
            Some(name) => {
                schema
                    .metric_index(name)
                    .map(Some)
                    .ok_or_else(|| CubrickError::NoSuchColumn {
                        table: table.to_string(),
                        column: name.clone(),
                    })
            }
        }
    }

    /// Human-readable output column name, e.g. `sum(clicks)`.
    pub fn label(&self) -> String {
        match &self.metric {
            Some(m) => format!("{}({m})", self.func.name()),
            None => format!("{}(*)", self.func.name()),
        }
    }
}

/// Mergeable accumulator for one aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggState {
    Count(u64),
    Sum(f64),
    Min(f64),
    Max(f64),
    Avg { sum: f64, count: u64 },
}

impl AggState {
    /// Fresh accumulator for a function.
    pub fn init(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Min => AggState::Min(f64::INFINITY),
            AggFunc::Max => AggState::Max(f64::NEG_INFINITY),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one row's metric value in (`v` is ignored by `Count`).
    #[inline]
    pub fn update(&mut self, v: f64) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s) => *s += v,
            AggState::Min(m) => *m = m.min(v),
            AggState::Max(m) => *m = m.max(v),
            AggState::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
        }
    }

    /// Merge another partial accumulator of the same shape.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => *a = a.min(*b),
            (AggState::Max(a), AggState::Max(b)) => *a = a.max(*b),
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (a, b) => panic!("merging mismatched accumulators {a:?} / {b:?}"),
        }
    }

    /// Final scalar value.
    pub fn finalize(&self) -> f64 {
        match self {
            AggState::Count(c) => *c as f64,
            AggState::Sum(s) => *s,
            AggState::Min(m) => {
                if m.is_finite() {
                    *m
                } else {
                    f64::NAN // empty group
                }
            }
            AggState::Max(m) => {
                if m.is_finite() {
                    *m
                } else {
                    f64::NAN
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    f64::NAN
                } else {
                    sum / *count as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    #[test]
    fn accumulate_each_function() {
        let values = [3.0, -1.0, 4.0, 4.0];
        let mut states: Vec<AggState> = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ]
        .iter()
        .map(|&f| AggState::init(f))
        .collect();
        for &v in &values {
            for s in &mut states {
                s.update(v);
            }
        }
        assert_eq!(states[0].finalize(), 4.0);
        assert_eq!(states[1].finalize(), 10.0);
        assert_eq!(states[2].finalize(), -1.0);
        assert_eq!(states[3].finalize(), 4.0);
        assert_eq!(states[4].finalize(), 2.5);
    }

    #[test]
    fn merge_equals_single_pass() {
        let (a_vals, b_vals) = ([1.0, 2.0], [3.0, 4.0, 5.0]);
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let mut left = AggState::init(func);
            let mut right = AggState::init(func);
            let mut whole = AggState::init(func);
            for &v in &a_vals {
                left.update(v);
                whole.update(v);
            }
            for &v in &b_vals {
                right.update(v);
                whole.update(v);
            }
            left.merge(&right);
            assert_eq!(left.finalize(), whole.finalize(), "{func:?}");
        }
    }

    #[test]
    fn empty_groups_finalize_to_nan_or_zero() {
        assert_eq!(AggState::init(AggFunc::Count).finalize(), 0.0);
        assert_eq!(AggState::init(AggFunc::Sum).finalize(), 0.0);
        assert!(AggState::init(AggFunc::Min).finalize().is_nan());
        assert!(AggState::init(AggFunc::Max).finalize().is_nan());
        assert!(AggState::init(AggFunc::Avg).finalize().is_nan());
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn merge_mismatch_panics() {
        let mut a = AggState::init(AggFunc::Sum);
        a.merge(&AggState::init(AggFunc::Count));
    }

    #[test]
    fn spec_validation() {
        let schema = SchemaBuilder::new()
            .int_dim("d", 0, 10, 1)
            .metric("m")
            .build()
            .unwrap();
        assert_eq!(
            AggSpec::count_star().metric_index(&schema, "t").unwrap(),
            None
        );
        assert_eq!(
            AggSpec::new(AggFunc::Sum, "m")
                .metric_index(&schema, "t")
                .unwrap(),
            Some(0)
        );
        assert!(AggSpec::new(AggFunc::Sum, "zz")
            .metric_index(&schema, "t")
            .is_err());
        let bad = AggSpec {
            func: AggFunc::Sum,
            metric: None,
        };
        assert!(bad.metric_index(&schema, "t").is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(AggSpec::count_star().label(), "count(*)");
        assert_eq!(AggSpec::new(AggFunc::Avg, "x").label(), "avg(x)");
    }
}
