//! Single-partition query execution.
//!
//! This is the code path that runs on every server a query fans out to:
//! compile predicates against the local partition, prune bricks through
//! the granular-partitioning grid, filter surviving rows, and accumulate
//! group-by state. Pure compute — all distribution concerns live above.

use crate::error::CubrickResult;
use crate::query::agg::AggState;
use crate::query::expr::{self};
use crate::query::result::{GroupVal, PartialResult};
use crate::query::Query;
use crate::store::PartitionData;

/// Execute `query` over one partition, producing a mergeable partial.
///
/// `table_partitions` is the table's current partition count, stamped
/// into result metadata for the proxy's cache (§IV-C).
pub fn execute_partition(
    partition: &mut PartitionData,
    query: &Query,
    table_partitions: u32,
) -> CubrickResult<PartialResult> {
    let schema = partition.schema().clone();

    // Resolve aggregation metric columns.
    let mut metric_cols: Vec<Option<usize>> = Vec::with_capacity(query.aggs.len());
    for agg in &query.aggs {
        metric_cols.push(agg.metric_index(&schema, &query.table)?);
    }

    // Resolve group-by dimensions.
    let mut group_dims: Vec<usize> = Vec::with_capacity(query.group_by.len());
    for name in &query.group_by {
        group_dims.push(schema.dim_index(name).ok_or_else(|| {
            crate::error::CubrickError::NoSuchColumn {
                table: query.table.clone(),
                column: name.clone(),
            }
        })?);
    }

    let mut result = PartialResult::new(query.aggs.clone(), table_partitions);
    let compiled = expr::compile(partition, &query.predicates)?;
    if !compiled.satisfiable {
        return Ok(result);
    }

    let agg_funcs: Vec<_> = query.aggs.iter().map(|a| a.func).collect();
    let mut rows_scanned = 0u64;
    let mut ordinals_buf: Vec<u32> = vec![0; schema.dimensions.len()];
    // Accumulate on raw ordinals during the scan; decode keys once at the
    // end (decoding per row would dominate the scan).
    let mut raw_groups: std::collections::BTreeMap<Vec<u32>, Vec<AggState>> =
        std::collections::BTreeMap::new();

    partition.for_each_matching_brick(&compiled.per_dim, |brick| {
        'row: for r in 0..brick.rows() {
            // Residual filter at row granularity (buckets are coarse).
            for (d, col) in brick.dims.iter().enumerate() {
                ordinals_buf[d] = col[r];
            }
            if !compiled.row_matches(&ordinals_buf) {
                continue 'row;
            }
            rows_scanned += 1;
            // Group key as raw ordinals; decoded after the scan.
            let key: Vec<u32> = group_dims.iter().map(|&d| brick.dims[d][r]).collect();
            let entry = raw_groups.entry(key).or_insert_with(|| {
                agg_funcs
                    .iter()
                    .map(|&f| AggState::init(f))
                    .collect::<Vec<_>>()
            });
            for (i, state) in entry.iter_mut().enumerate() {
                let v = match metric_cols[i] {
                    Some(m) => brick.metrics[m][r],
                    None => 0.0, // count(*) ignores the value
                };
                state.update(v);
            }
        }
    });

    // Decode ordinal group keys to logical values.
    for (raw_key, states) in raw_groups {
        let decoded: Vec<GroupVal> = raw_key
            .iter()
            .zip(&group_dims)
            .map(|(&ord, &d)| match partition.dict(d) {
                Some(dict) => {
                    GroupVal::Str(dict.decode(ord).expect("ordinal encoded here").to_string())
                }
                None => GroupVal::Int(schema.dimensions[d].int_value(ord).expect("int dim")),
            })
            .collect();
        result.groups.insert(decoded, states);
    }
    result.rows_scanned = rows_scanned;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::agg::{AggFunc, AggSpec};
    use crate::query::expr::Predicate;
    use crate::schema::SchemaBuilder;
    use crate::value::{Row, Value};
    use std::sync::Arc;

    fn partition() -> PartitionData {
        let schema = Arc::new(
            SchemaBuilder::new()
                .int_dim("ds", 0, 100, 10)
                .str_dim("country", 100, 10)
                .metric("clicks")
                .metric("cost")
                .build()
                .unwrap(),
        );
        let mut p = PartitionData::new(schema);
        // 100 days × 3 countries; clicks = ds, cost = 1.0
        for ds in 0..100i64 {
            for c in ["US", "BR", "IN"] {
                p.ingest(&Row::new(
                    vec![Value::Int(ds), Value::from(c)],
                    vec![ds as f64, 1.0],
                ))
                .unwrap();
            }
        }
        p
    }

    fn q(aggs: Vec<AggSpec>, predicates: Vec<Predicate>, group_by: Vec<&str>) -> Query {
        Query {
            table: "t".into(),
            aggs,
            predicates,
            group_by: group_by.into_iter().map(String::from).collect(),
            order_by: None,
            limit: None,
        }
    }

    #[test]
    fn count_star_full_scan() {
        let mut p = partition();
        let out = execute_partition(&mut p, &q(vec![AggSpec::count_star()], vec![], vec![]), 8)
            .unwrap()
            .finalize();
        assert_eq!(out.scalar(), Some(300.0));
        assert_eq!(out.table_partitions, 8);
        assert_eq!(out.rows_scanned, 300);
    }

    #[test]
    fn filtered_sum_matches_oracle() {
        let mut p = partition();
        // sum(clicks) where ds between 10 and 19 and country = 'US'
        let query = q(
            vec![AggSpec::new(AggFunc::Sum, "clicks")],
            vec![
                Predicate::between("ds", 10, 19),
                Predicate::eq("country", "US"),
            ],
            vec![],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        let oracle: f64 = (10..=19).map(|v| v as f64).sum();
        assert_eq!(out.scalar(), Some(oracle));
        // Pruning: only 1 of 10 ds-buckets scanned.
        assert_eq!(p.stats().bricks_scanned, 1);
        assert_eq!(p.stats().bricks_pruned, 9);
    }

    #[test]
    fn residual_filter_inside_brick() {
        let mut p = partition();
        // ds = 15 shares a bucket with 10..=19; the row filter must trim.
        let query = q(
            vec![AggSpec::count_star()],
            vec![Predicate::eq("ds", 15i64)],
            vec![],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        assert_eq!(out.scalar(), Some(3.0), "3 countries at ds=15");
    }

    #[test]
    fn group_by_string_dimension() {
        let mut p = partition();
        let query = q(
            vec![AggSpec::count_star(), AggSpec::new(AggFunc::Avg, "clicks")],
            vec![],
            vec!["country"],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        assert_eq!(out.rows.len(), 3);
        // Sorted: BR, IN, US.
        assert_eq!(out.rows[0].key, vec![Value::Str("BR".into())]);
        assert_eq!(out.rows[2].key, vec![Value::Str("US".into())]);
        for row in &out.rows {
            assert_eq!(row.aggs[0], 100.0);
            assert!((row.aggs[1] - 49.5).abs() < 1e-9);
        }
    }

    #[test]
    fn group_by_int_dimension_with_filter() {
        let mut p = partition();
        let query = q(
            vec![AggSpec::new(AggFunc::Sum, "cost")],
            vec![Predicate::is_in("ds", vec![Value::Int(5), Value::Int(50)])],
            vec!["ds"],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].key, vec![Value::Int(5)]);
        assert_eq!(out.rows[0].aggs, vec![3.0]);
        assert_eq!(out.rows[1].key, vec![Value::Int(50)]);
    }

    #[test]
    fn min_max_metrics() {
        let mut p = partition();
        let query = q(
            vec![
                AggSpec::new(AggFunc::Min, "clicks"),
                AggSpec::new(AggFunc::Max, "clicks"),
            ],
            vec![Predicate::between("ds", 20, 30)],
            vec![],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        assert_eq!(out.rows[0].aggs, vec![20.0, 30.0]);
    }

    #[test]
    fn unsatisfiable_predicate_returns_empty() {
        let mut p = partition();
        let query = q(
            vec![AggSpec::count_star()],
            vec![Predicate::eq("country", "ZZ")],
            vec![],
        );
        let out = execute_partition(&mut p, &query, 8).unwrap().finalize();
        assert!(out.rows.is_empty());
        assert_eq!(p.stats().bricks_scanned, 0, "nothing scanned at all");
    }

    #[test]
    fn execution_identical_after_compression() {
        let mut a = partition();
        let mut b = partition();
        let zero = crate::hotness::MemoryMonitorConfig {
            budget_bytes: 0,
            ..Default::default()
        };
        b.run_memory_monitor(&zero);
        let query = q(
            vec![AggSpec::new(AggFunc::Sum, "clicks")],
            vec![Predicate::eq("country", "BR")],
            vec!["ds"],
        );
        let out_a = execute_partition(&mut a, &query, 8).unwrap().finalize();
        let out_b = execute_partition(&mut b, &query, 8).unwrap().finalize();
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn errors_propagate() {
        let mut p = partition();
        let query = q(vec![AggSpec::new(AggFunc::Sum, "nope")], vec![], vec![]);
        assert!(execute_partition(&mut p, &query, 8).is_err());
        let query = q(vec![AggSpec::count_star()], vec![], vec!["nope"]);
        assert!(execute_partition(&mut p, &query, 8).is_err());
    }
}
