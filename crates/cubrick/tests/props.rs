//! Property-based tests of the Cubrick engine's core invariants.

use cubrick::brick::Brick;
use cubrick::compression::CompressedBrick;
use cubrick::dictionary::Dictionary;
use cubrick::encoding;
use cubrick::partition::BrickSpace;
use cubrick::schema::{Schema, SchemaBuilder};
use cubrick::sharding::{parse_partition_name, partition_name, ShardMapping};
use proptest::prelude::*;

// ----------------------------------------------------------------- codecs

proptest! {
    /// Every integer codec round-trips arbitrary columns exactly.
    #[test]
    fn u32_codecs_round_trip(values in proptest::collection::vec(any::<u32>(), 0..2_000)) {
        let auto = encoding::encode_u32_auto(&values);
        prop_assert_eq!(encoding::decode_u32(&auto), values.clone());
        for payload in [
            (encoding::IntCodec::Rle, cubrick::encoding::rle::encode(&values)),
            (encoding::IntCodec::BitPack, cubrick::encoding::bitpack::encode(&values)),
            (encoding::IntCodec::Delta, cubrick::encoding::delta::encode(&values)),
        ] {
            let encoded = encoding::EncodedU32 { codec: payload.0, payload: payload.1, rows: values.len() };
            prop_assert_eq!(encoding::decode_u32(&encoded), values.clone(), "{:?}", payload.0);
        }
    }

    /// Auto-selection never does worse than any individual codec.
    #[test]
    fn auto_codec_is_minimal(values in proptest::collection::vec(0u32..1_000, 1..1_000)) {
        let auto = encoding::encode_u32_auto(&values);
        let rle = cubrick::encoding::rle::encode(&values);
        let bp = cubrick::encoding::bitpack::encode(&values);
        let delta = cubrick::encoding::delta::encode(&values);
        let min = rle.len().min(bp.len()).min(delta.len());
        prop_assert_eq!(auto.payload.len(), min);
    }

    /// Float XOR codec preserves bit patterns exactly (incl. -0.0, NaN).
    #[test]
    fn f64_codec_round_trips(bits in proptest::collection::vec(any::<u64>(), 0..1_000)) {
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let decoded = encoding::decode_f64(&encoding::encode_f64(&values));
        prop_assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Varints round-trip and zig-zag is a bijection.
    #[test]
    fn varint_round_trip(values in proptest::collection::vec(any::<u64>(), 0..500)) {
        let mut buf = Vec::new();
        for &v in &values {
            cubrick::encoding::varint::write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(cubrick::encoding::varint::read_u64(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_bijective(v in any::<i64>()) {
        prop_assert_eq!(
            cubrick::encoding::varint::unzigzag(cubrick::encoding::varint::zigzag(v)),
            v
        );
    }
}

// ----------------------------------------------------- brick compression

fn brick_strategy() -> impl Strategy<Value = Brick> {
    (1usize..4, 0usize..3, 0usize..500).prop_flat_map(|(dims, metrics, rows)| {
        (
            proptest::collection::vec(
                proptest::collection::vec(any::<u32>(), rows..=rows),
                dims..=dims,
            ),
            proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, rows..=rows),
                metrics..=metrics,
            ),
        )
            .prop_map(move |(dcols, mcols)| {
                let mut b = Brick::new(dcols.len(), mcols.len());
                for r in 0..rows {
                    let ords: Vec<u32> = dcols.iter().map(|c| c[r]).collect();
                    let ms: Vec<f64> = mcols.iter().map(|c| c[r]).collect();
                    b.push(&ords, &ms);
                }
                b
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn brick_compression_round_trips(brick in brick_strategy()) {
        let original = brick.clone();
        let compressed = CompressedBrick::compress(brick);
        prop_assert_eq!(compressed.rows(), original.rows());
        prop_assert_eq!(compressed.decompressed_bytes(), original.payload_bytes());
        prop_assert_eq!(compressed.decompress(), original);
    }
}

// ----------------------------------------------------- granular partitioning

fn schema_strategy() -> impl Strategy<Value = Schema> {
    proptest::collection::vec((1i64..200, 1u32..40), 1..4).prop_map(|dims| {
        let mut b = SchemaBuilder::new();
        for (i, (card, range)) in dims.iter().enumerate() {
            b = b.int_dim(&format!("d{i}"), 0, *card, *range);
        }
        b.metric("m").build().expect("generated schema is valid")
    })
}

proptest! {
    /// brick_id ∘ coords is the identity on every valid ordinal vector,
    /// and brick ids never exceed the brick space.
    #[test]
    fn brick_id_bijection(schema in schema_strategy(), seed in any::<u64>()) {
        let space = BrickSpace::from_schema(&schema);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..50 {
            let ordinals: Vec<u32> = schema
                .dimensions
                .iter()
                .map(|d| (next() % d.cardinality().max(1)) as u32)
                .collect();
            let id = space.brick_id(&ordinals);
            prop_assert!(id < space.brick_count());
            let coords = space.coords(id);
            for (dim, (&ord, &coord)) in ordinals.iter().zip(&coords).enumerate() {
                prop_assert_eq!(space.coord_of(dim, ord), coord);
                let (lo, hi) = space.bucket_ordinal_range(dim, coord);
                prop_assert!(ord >= lo && ord <= hi);
            }
        }
    }

    /// Pruning is conservative: a brick matching a point constraint always
    /// contains the bucket for that point.
    #[test]
    fn pruning_never_drops_matching_bricks(
        schema in schema_strategy(),
        seed in any::<u64>(),
    ) {
        let space = BrickSpace::from_schema(&schema);
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let ordinals: Vec<u32> = schema
            .dimensions
            .iter()
            .map(|d| (next() % d.cardinality().max(1)) as u32)
            .collect();
        let id = space.brick_id(&ordinals);
        let constraints: Vec<Option<Vec<(u32, u32)>>> =
            ordinals.iter().map(|&o| Some(vec![(o, o)])).collect();
        prop_assert!(space.brick_matches(id, &constraints));
    }
}

// ---------------------------------------------------------------- sharding

proptest! {
    /// The monotonic mapping never self-collides while partitions ≤ shards.
    #[test]
    fn monotonic_mapping_injective_within_table(
        table in "[a-z][a-z0-9_]{0,20}",
        partitions in 1u32..200,
        max_shards in 200u64..100_000,
    ) {
        let mut shards = ShardMapping::Monotonic.shards_of_table(&table, partitions, max_shards);
        shards.sort_unstable();
        shards.dedup();
        prop_assert_eq!(shards.len(), partitions as usize);
    }

    /// Partition names round-trip for any table name without '#'.
    #[test]
    fn partition_names_round_trip(
        table in "[a-zA-Z_][a-zA-Z0-9_.]{0,30}",
        partition in any::<u32>(),
    ) {
        let name = partition_name(&table, partition);
        prop_assert_eq!(parse_partition_name(&name), Some((table.as_str(), partition)));
    }

    /// Shard ids always live in the key space.
    #[test]
    fn shards_in_key_space(
        table in "[a-z]{1,10}",
        partition in any::<u32>(),
        max_shards in 1u64..1_000_000,
    ) {
        for mapping in [ShardMapping::Naive, ShardMapping::Monotonic] {
            prop_assert!(mapping.shard_of(&table, partition, max_shards) < max_shards);
        }
    }
}

// -------------------------------------------------------------- dictionary

proptest! {
    #[test]
    fn dictionary_encode_decode_bijective(
        words in proptest::collection::vec("[a-z]{1,8}", 0..200),
    ) {
        let mut dict = Dictionary::new(10_000);
        let mut first_id: std::collections::HashMap<String, u32> = Default::default();
        for w in &words {
            let id = dict.encode("d", w).unwrap();
            // Same string always gets the same id.
            let prev = first_id.entry(w.clone()).or_insert(id);
            prop_assert_eq!(*prev, id);
            prop_assert_eq!(dict.decode(id), Some(w.as_str()));
        }
        let distinct: std::collections::HashSet<&String> = words.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }
}
