//! Property-based tests of the Cubrick engine's core invariants.

use cubrick::brick::Brick;
use cubrick::compression::CompressedBrick;
use cubrick::dictionary::Dictionary;
use cubrick::encoding;
use cubrick::partition::BrickSpace;
use cubrick::schema::{Schema, SchemaBuilder};
use cubrick::sharding::{parse_partition_name, partition_name, ShardMapping};
use scalewall_sim::prop::{self, gen};
use scalewall_sim::SimRng;

// ----------------------------------------------------------------- codecs

/// Every integer codec round-trips arbitrary columns exactly.
#[test]
fn u32_codecs_round_trip() {
    prop::check(
        "u32_codecs_round_trip",
        |rng| gen::vec_with(rng, 0, 2_000, gen::any_u32),
        |values| {
            let auto = encoding::encode_u32_auto(values);
            assert_eq!(encoding::decode_u32(&auto), values.clone());
            for payload in [
                (encoding::IntCodec::Rle, cubrick::encoding::rle::encode(values)),
                (encoding::IntCodec::BitPack, cubrick::encoding::bitpack::encode(values)),
                (encoding::IntCodec::Delta, cubrick::encoding::delta::encode(values)),
            ] {
                let encoded = encoding::EncodedU32 {
                    codec: payload.0,
                    payload: payload.1,
                    rows: values.len(),
                };
                assert_eq!(encoding::decode_u32(&encoded), values.clone(), "{:?}", payload.0);
            }
        },
    );
}

/// Auto-selection never does worse than any individual codec.
#[test]
fn auto_codec_is_minimal() {
    prop::check(
        "auto_codec_is_minimal",
        |rng| gen::vec_with(rng, 1, 1_000, |r| r.below(1_000) as u32),
        |values| {
            let auto = encoding::encode_u32_auto(values);
            let rle = cubrick::encoding::rle::encode(values);
            let bp = cubrick::encoding::bitpack::encode(values);
            let delta = cubrick::encoding::delta::encode(values);
            let min = rle.len().min(bp.len()).min(delta.len());
            assert_eq!(auto.payload.len(), min);
        },
    );
}

/// Float XOR codec preserves bit patterns exactly (incl. -0.0, NaN).
#[test]
fn f64_codec_round_trips() {
    prop::check(
        "f64_codec_round_trips",
        |rng| gen::vec_with(rng, 0, 1_000, gen::any_u64),
        |bits| {
            let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            let decoded = encoding::decode_f64(&encoding::encode_f64(&values));
            assert_eq!(decoded.len(), values.len());
            for (a, b) in values.iter().zip(&decoded) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        },
    );
}

/// Varints round-trip and zig-zag is a bijection.
#[test]
fn varint_round_trip() {
    prop::check(
        "varint_round_trip",
        |rng| gen::vec_with(rng, 0, 500, gen::any_u64),
        |values| {
            let mut buf = Vec::new();
            for &v in values {
                cubrick::encoding::varint::write_u64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in values {
                assert_eq!(cubrick::encoding::varint::read_u64(&buf, &mut pos), Some(v));
            }
            assert_eq!(pos, buf.len());
        },
    );
}

#[test]
fn zigzag_bijective() {
    prop::check("zigzag_bijective", gen::any_i64, |&v| {
        assert_eq!(
            cubrick::encoding::varint::unzigzag(cubrick::encoding::varint::zigzag(v)),
            v
        );
    });
}

// ----------------------------------------------------- brick compression

fn gen_brick(rng: &mut SimRng) -> Brick {
    let dims = gen::usize_in(rng, 1, 4);
    let metrics = gen::usize_in(rng, 0, 3);
    let rows = gen::usize_in(rng, 0, 500);
    let mut b = Brick::new(dims, metrics);
    for _ in 0..rows {
        let ords: Vec<u32> = (0..dims).map(|_| gen::any_u32(rng)).collect();
        let ms: Vec<f64> = (0..metrics).map(|_| gen::f64_in(rng, -1e6, 1e6)).collect();
        b.push(&ords, &ms);
    }
    b
}

#[test]
fn brick_compression_round_trips() {
    prop::check_n("brick_compression_round_trips", 64, gen_brick, |brick| {
        let original = brick.clone();
        let compressed = CompressedBrick::compress(brick.clone());
        assert_eq!(compressed.rows(), original.rows());
        assert_eq!(compressed.decompressed_bytes(), original.payload_bytes());
        assert_eq!(compressed.decompress(), original);
    });
}

// ----------------------------------------------------- granular partitioning

fn gen_schema(rng: &mut SimRng) -> Schema {
    let dims = gen::vec_with(rng, 1, 4, |r| (r.range(1, 200) as i64, r.range(1, 40) as u32));
    let mut b = SchemaBuilder::new();
    for (i, (card, range)) in dims.iter().enumerate() {
        b = b.int_dim(&format!("d{i}"), 0, *card, *range);
    }
    b.metric("m").build().expect("generated schema is valid")
}

/// brick_id ∘ coords is the identity on every valid ordinal vector,
/// and brick ids never exceed the brick space.
#[test]
fn brick_id_bijection() {
    prop::check(
        "brick_id_bijection",
        |rng| (gen_schema(rng), gen::any_u64(rng)),
        |(schema, seed)| {
            let space = BrickSpace::from_schema(schema);
            let mut state = *seed;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            };
            for _ in 0..50 {
                let ordinals: Vec<u32> = schema
                    .dimensions
                    .iter()
                    .map(|d| (next() % d.cardinality().max(1)) as u32)
                    .collect();
                let id = space.brick_id(&ordinals);
                assert!(id < space.brick_count());
                let coords = space.coords(id);
                for (dim, (&ord, &coord)) in ordinals.iter().zip(&coords).enumerate() {
                    assert_eq!(space.coord_of(dim, ord), coord);
                    let (lo, hi) = space.bucket_ordinal_range(dim, coord);
                    assert!(ord >= lo && ord <= hi);
                }
            }
        },
    );
}

/// Pruning is conservative: a brick matching a point constraint always
/// contains the bucket for that point.
#[test]
fn pruning_never_drops_matching_bricks() {
    prop::check(
        "pruning_never_drops_matching_bricks",
        |rng| (gen_schema(rng), gen::any_u64(rng)),
        |(schema, seed)| {
            let space = BrickSpace::from_schema(schema);
            let mut state = *seed | 1;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            };
            let ordinals: Vec<u32> = schema
                .dimensions
                .iter()
                .map(|d| (next() % d.cardinality().max(1)) as u32)
                .collect();
            let id = space.brick_id(&ordinals);
            let constraints: Vec<Option<Vec<(u32, u32)>>> =
                ordinals.iter().map(|&o| Some(vec![(o, o)])).collect();
            assert!(space.brick_matches(id, &constraints));
        },
    );
}

// ---------------------------------------------------------------- sharding

const IDENT_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
const DOTTED_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
const DOTTED_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";

/// The monotonic mapping never self-collides while partitions ≤ shards.
#[test]
fn monotonic_mapping_injective_within_table() {
    prop::check(
        "monotonic_mapping_injective_within_table",
        |rng| {
            (
                gen::ident(rng, gen::LOWER, IDENT_REST, 0, 21),
                rng.range(1, 200) as u32,
                rng.range(200, 100_000),
            )
        },
        |(table, partitions, max_shards)| {
            let mut shards =
                ShardMapping::Monotonic.shards_of_table(table, *partitions, *max_shards);
            shards.sort_unstable();
            shards.dedup();
            assert_eq!(shards.len(), *partitions as usize);
        },
    );
}

/// Partition names round-trip for any table name without '#'.
#[test]
fn partition_names_round_trip() {
    prop::check(
        "partition_names_round_trip",
        |rng| {
            (
                gen::ident(rng, DOTTED_FIRST, DOTTED_REST, 0, 31),
                gen::any_u32(rng),
            )
        },
        |(table, partition)| {
            let name = partition_name(table, *partition);
            assert_eq!(parse_partition_name(&name), Some((table.as_str(), *partition)));
        },
    );
}

/// Shard ids always live in the key space.
#[test]
fn shards_in_key_space() {
    prop::check(
        "shards_in_key_space",
        |rng| {
            let len = gen::usize_in(rng, 1, 11);
            (
                gen::string_from(rng, gen::LOWER, len),
                gen::any_u32(rng),
                rng.range(1, 1_000_000),
            )
        },
        |(table, partition, max_shards)| {
            for mapping in [ShardMapping::Naive, ShardMapping::Monotonic] {
                assert!(mapping.shard_of(table, *partition, *max_shards) < *max_shards);
            }
        },
    );
}

// -------------------------------------------------------------- dictionary

#[test]
fn dictionary_encode_decode_bijective() {
    prop::check(
        "dictionary_encode_decode_bijective",
        |rng| {
            gen::vec_with(rng, 0, 200, |r| {
                let len = gen::usize_in(r, 1, 9);
                gen::string_from(r, gen::LOWER, len)
            })
        },
        |words| {
            let mut dict = Dictionary::new(10_000);
            let mut first_id: std::collections::HashMap<String, u32> = Default::default();
            for w in words {
                let id = dict.encode("d", w).unwrap();
                // Same string always gets the same id.
                let prev = first_id.entry(w.clone()).or_insert(id);
                assert_eq!(*prev, id);
                assert_eq!(dict.decode(id), Some(w.as_str()));
            }
            let distinct: std::collections::HashSet<&String> = words.iter().collect();
            assert_eq!(dict.len(), distinct.len());
        },
    );
}

// ------------------------------------------------- proxy blacklist / retries

use cubrick::error::CubrickError;
use cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall_shard_manager::HostId;
use scalewall_sim::{SimDuration, SimTime};

/// The proxy's blacklist follows its documented state machine exactly:
/// a success wipes the host's record; each failure bumps a consecutive
/// counter; reaching the threshold while not already blacklisted arms a
/// TTL window that is exclusive at its upper boundary and re-arms on
/// the first post-expiry failure at or past the threshold (ISSUE 10
/// satellite: the retry-spin fix). Checked against an independent
/// shadow model over arbitrary failure/success/probe schedules.
#[test]
fn blacklist_decisions_match_shadow_model() {
    prop::check(
        "blacklist_decisions_match_shadow_model",
        |rng| {
            gen::vec_with(rng, 1, 300, |r| {
                // (advance nanos, event: 0 = failure, 1 = success, 2 = probe)
                let gap = r.below(3_000_000_000);
                let ev = if r.chance(0.6) {
                    0u8
                } else if r.chance(0.25) {
                    1
                } else {
                    2
                };
                (gap, ev)
            })
        },
        |schedule| {
            let config = ProxyConfig::default();
            let (threshold, ttl) = (config.blacklist_threshold, config.blacklist_ttl);
            let mut proxy = CubrickProxy::new(config);
            let host = HostId(7);
            let mut now = SimTime::from_secs(1);
            // Shadow model: (consecutive failures, blacklisted-until).
            let mut failures = 0u32;
            let mut until: Option<SimTime> = None;
            for &(gap, ev) in schedule {
                now = now + SimDuration::from_nanos(gap);
                match ev {
                    0 => {
                        proxy.record_host_failure(host, now);
                        failures += 1;
                        let active = until.is_some_and(|u| now < u);
                        if failures >= threshold && !active {
                            until = Some(now + ttl);
                        }
                    }
                    1 => {
                        proxy.record_host_success(host);
                        failures = 0;
                        until = None;
                    }
                    _ => {}
                }
                let expected = until.is_some_and(|u| now < u);
                assert_eq!(
                    proxy.is_blacklisted(host, now),
                    expected,
                    "divergence at now={now:?} after {failures} failures (until {until:?})"
                );
                if let Some(u) = until {
                    // The boundary is exclusive: at `until` the host is
                    // already serviceable again.
                    assert!(!proxy.is_blacklisted(host, u), "inclusive boundary at {u:?}");
                }
            }
        },
    );
}

/// `should_retry` spends the retry budget exactly: a retryable error is
/// retried for attempts `0..max_retries` and never past them, a fatal
/// error never, and every granted retry is counted in the stats.
#[test]
fn retry_budget_is_spent_exactly() {
    prop::check(
        "retry_budget_is_spent_exactly",
        |rng| {
            (
                gen::usize_in(rng, 0, 6) as u32,
                gen::usize_in(rng, 0, 12) as u32,
                gen::any_bool(rng),
            )
        },
        |&(max_retries, attempts, retryable)| {
            let mut proxy = CubrickProxy::new(ProxyConfig {
                max_retries,
                ..Default::default()
            });
            let error = if retryable {
                CubrickError::PartitionUnavailable {
                    table: "t".into(),
                    partition: 0,
                }
            } else {
                CubrickError::Parse {
                    detail: "x".into(),
                    position: 0,
                }
            };
            let mut granted = 0u64;
            for attempt in 0..attempts {
                let decision = proxy.should_retry(&error, attempt);
                assert_eq!(
                    decision,
                    retryable && attempt < max_retries,
                    "attempt {attempt} of budget {max_retries} (retryable {retryable})"
                );
                granted += u64::from(decision);
            }
            assert_eq!(proxy.stats.retries, granted, "every grant is counted");
        },
    );
}
