//! A small hand-rolled Rust lexer.
//!
//! Just enough tokenization for determinism linting: identifiers, numeric
//! literals, string/char literals, lifetimes, punctuation, and comments —
//! with correct handling of the contexts that make naive grep-lints lie:
//! string contents (`"HashMap"`), raw strings (`r#"…"#`), char literals
//! vs. lifetimes (`'a'` vs `'a`), and nested block comments.
//!
//! No `syn`, no `proc-macro2`: the workspace is hermetic (DESIGN.md), and
//! the rules in [`crate::lint_source`] only need token streams, not ASTs.

/// One lexical token kind. Literal *contents* are deliberately dropped for
/// strings and chars — nothing inside them can ever trigger a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `unsafe`); raw identifiers
    /// (`r#type`) are unescaped to their plain name.
    Ident(String),
    /// Integer literal, verbatim text (`42`, `0xFF_u64`).
    Int(String),
    /// Float literal, verbatim text (`1.5`, `2e3`, `1f64`).
    Float(String),
    /// Any string literal (`"…"`, `b"…"`, `r#"…"#`, …).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'outer`), without the quote.
    Lifetime(String),
    /// Single punctuation character; multi-char operators arrive as
    /// consecutive tokens (`::` is two `Punct(':')`).
    Punct(char),
    /// Line or block comment, verbatim text including delimiters.
    Comment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Consume a `"…"` string body starting at the opening quote; returns the
/// index just past the closing quote and bumps `line` across newlines.
fn consume_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // An escaped newline (string line-continuation) still ends
                // a physical line; missing it would shift every subsequent
                // line number and break pragma scoping.
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Tokenize Rust source. Unterminated constructs simply end at EOF — the
/// lexer is for linting real, compiling code, not for error recovery.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Comment(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.push(Token {
                tok: Tok::Comment(chars[start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Lifetime vs. char literal. `'a` with no closing quote two chars
        // on is a lifetime/label; everything else after `'` is a char.
        if c == '\'' {
            if let Some(&n) = chars.get(i + 1) {
                if (n.is_alphabetic() || n == '_') && chars.get(i + 2) != Some(&'\'') {
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    out.push(Token {
                        tok: Tok::Lifetime(chars[i + 1..j].iter().collect()),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            let mut j = i + 1;
            if chars.get(j) == Some(&'\\') {
                // Escaped char: skip to the closing quote (covers \', \\,
                // \n, \u{…}).
                j += 2;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
            } else if j < chars.len() {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                j += 1;
            }
            out.push(Token { tok: Tok::Char, line });
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            i = consume_string(&chars, i, &mut line);
            out.push(Token {
                tok: Tok::Str,
                line: start_line,
            });
            continue;
        }
        // Identifier, keyword, raw identifier, or string prefix.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            // Raw identifier `r#name`.
            if word == "r"
                && chars.get(j) == Some(&'#')
                && chars
                    .get(j + 1)
                    .is_some_and(|c| c.is_alphabetic() || *c == '_')
            {
                let mut k = j + 1;
                while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[j + 1..k].iter().collect()),
                    line,
                });
                i = k;
                continue;
            }
            // Raw string `r"…"` / `r#"…"#` (and byte/C variants).
            if matches!(word.as_str(), "r" | "br" | "cr")
                && matches!(chars.get(j), Some('"') | Some('#'))
            {
                let mut hashes = 0usize;
                let mut k = j;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    let start_line = line;
                    k += 1;
                    while k < chars.len() {
                        if chars[k] == '\n' {
                            line += 1;
                        } else if chars[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break;
                            }
                        }
                        k += 1;
                    }
                    out.push(Token {
                        tok: Tok::Str,
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            // Prefixed plain string `b"…"` / `c"…"`.
            if matches!(word.as_str(), "b" | "c") && chars.get(j) == Some(&'"') {
                let start_line = line;
                i = consume_string(&chars, j, &mut line);
                out.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
                continue;
            }
            // Byte char `b'x'`.
            if word == "b" && chars.get(j) == Some(&'\'') {
                let mut k = j + 1;
                if chars.get(k) == Some(&'\\') {
                    k += 2;
                    while k < chars.len() && chars[k] != '\'' {
                        k += 1;
                    }
                } else if k < chars.len() {
                    k += 1;
                }
                if chars.get(k) == Some(&'\'') {
                    k += 1;
                }
                out.push(Token { tok: Tok::Char, line });
                i = k;
                continue;
            }
            out.push(Token {
                tok: Tok::Ident(word),
                line,
            });
            i = j;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut is_float = false;
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O')) {
                j = i + 2;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            } else {
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
                // Fractional part — but not `..` ranges or method calls.
                if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        j += 1;
                    }
                }
                if matches!(chars.get(j), Some('e' | 'E'))
                    && chars
                        .get(j + 1)
                        .is_some_and(|c| c.is_ascii_digit() || *c == '+' || *c == '-')
                {
                    is_float = true;
                    j += 2;
                    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        j += 1;
                    }
                }
                // Type suffix (`u64`, `f32`, `usize`…).
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    if chars[j] == 'f' {
                        is_float = true;
                    }
                    j += 1;
                }
            }
            let text: String = chars[i..j].iter().collect();
            out.push(Token {
                tok: if is_float {
                    Tok::Float(text)
                } else {
                    Tok::Int(text)
                },
                line,
            });
            i = j;
            continue;
        }
        out.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("let x = 1;\nlet y = 2.5;");
        assert_eq!(toks[0], Token { tok: Tok::Ident("let".into()), line: 1 });
        assert!(toks.iter().any(|t| t.tok == Tok::Int("1".into()) && t.line == 1));
        assert!(toks.iter().any(|t| t.tok == Tok::Float("2.5".into()) && t.line == 2));
    }

    #[test]
    fn string_contents_do_not_produce_idents() {
        assert_eq!(idents(r#"let s = "HashMap Instant unsafe";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r##"let s = r#"a "quoted" HashMap"# ; let t = HashMap::new();"##;
        assert_eq!(idents(src), ["let", "s", "let", "t", "HashMap", "new"]);
    }

    #[test]
    fn multiline_raw_string_counts_lines() {
        let src = "let s = r\"line1\nline2\";\nInstant";
        let toks = lex(src);
        let inst = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("Instant".into()))
            .unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r#"b"unsafe" c"unsafe" br"unsafe""#), Vec::<String>::new());
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = lex(r"'a' 'x' '\n' '\u{1F600}' '\'' b'q'");
        assert!(toks.iter().all(|t| t.tok == Tok::Char), "{toks:?}");
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn lifetimes_and_labels() {
        let toks = lex("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a", "outer", "outer"]);
    }

    #[test]
    fn nested_block_comments_do_not_leak() {
        let src = "/* outer /* inner HashMap */ still comment */ Instant";
        assert_eq!(idents(src), ["Instant"]);
        let toks = lex(src);
        assert!(matches!(&toks[0].tok, Tok::Comment(c) if c.contains("inner")));
    }

    #[test]
    fn line_comment_text_is_preserved() {
        let toks = lex("x // scalewall-lint: allow(D2) -- reason\ny");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Comment(c) if c.contains("allow(D2)"))));
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn numeric_literal_shapes() {
        let toks = lex("0xFF 0b10 1_000u64 1.5 2e3 1f64 0..10 x.0");
        let ints: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Int(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let floats: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Float(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ints, ["0xFF", "0b10", "1_000u64", "0", "10", "0"]);
        assert_eq!(floats, ["1.5", "2e3", "1f64"]);
    }

    #[test]
    fn escaped_newline_in_string_counts_lines() {
        // `"\<newline>…"` is a line continuation: the physical newline must
        // still bump the line counter or everything after shifts by one.
        let src = "let s = \"a\\\nb\";\nInstant";
        let toks = lex(src);
        let inst = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("Instant".into()))
            .unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn raw_string_spanning_pragma_lines_stays_inert() {
        // A pragma-shaped line *inside* a raw string is string content:
        // no token, no suppression, and line numbers stay exact after it.
        let src = "let s = r#\"x\n// scalewall-lint: allow(D2) -- not real\ny\"#;\nInstant";
        let toks = lex(src);
        assert!(toks.iter().all(|t| !matches!(&t.tok, Tok::Comment(_))));
        let inst = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("Instant".into()))
            .unwrap();
        assert_eq!(inst.line, 4);
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let toks = lex("a::b");
        assert_eq!(toks[1].tok, Tok::Punct(':'));
        assert_eq!(toks[2].tok, Tok::Punct(':'));
    }
}
