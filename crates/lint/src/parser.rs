//! A tolerant recursive-descent parser for the determinism lint.
//!
//! Just enough of an AST for semantic rules: items (functions with typed
//! params, structs with typed fields, impl blocks, inline modules),
//! statements, and an expression tree that keeps the shapes the rules
//! care about — paths, calls, method calls, field accesses, indexing,
//! literals, blocks, `unsafe`, control flow, closures. No `syn`, no
//! `proc-macro2`: the workspace is hermetic (DESIGN.md).
//!
//! **Totality over fidelity.** The parser never fails and never panics:
//! anything it cannot shape (macro arguments, match patterns and guards,
//! `use`/`const`/`enum` items, recovery stretches) is recorded as an
//! *opaque span* — a token range tagged with the enclosing `#[cfg(test)]`
//! state — and the caller runs the token-level fallback scan over those
//! spans so detection never regresses below the v1 lexer lint. Known
//! false-negative edges of this conservatism are documented in DESIGN.md
//! §5c.

use crate::lexer::{lex, Tok, Token};

/// A token range `[start, end)` into [`ParsedFile::tokens`] that the
/// parser did not shape into AST; the fallback token scan covers it.
#[derive(Debug, Clone)]
pub struct OpaqueSpan {
    pub start: usize,
    pub end: usize,
    pub in_test: bool,
}

/// A type as the lint sees it: rendered text plus the identifiers it
/// mentions (for `HashMap`-style type bans and lock-type lookups).
#[derive(Debug, Clone, Default)]
pub struct Ty {
    pub text: String,
    pub idents: Vec<String>,
    pub line: u32,
}

impl Ty {
    pub fn mentions(&self, ident: &str) -> bool {
        self.idents.iter().any(|i| i == ident)
    }
}

#[derive(Debug, Clone)]
pub struct Param {
    pub name: Option<String>,
    pub ty: Ty,
}

#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `Some(T)` for methods in `impl T` / `impl Tr for T` blocks.
    pub self_ty: Option<String>,
    /// Enclosing inline-module path (innermost last).
    pub modpath: Vec<String>,
    pub takes_self: bool,
    pub params: Vec<Param>,
    pub ret: Option<Ty>,
    pub body: Option<Block>,
    pub line: u32,
    pub in_test: bool,
}

#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    /// Named or tuple fields; tuple fields are named `"0"`, `"1"`, ….
    pub fields: Vec<(String, Ty)>,
    pub line: u32,
    pub in_test: bool,
}

#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub enum Stmt {
    Let {
        /// `Some` only for simple `let [mut] name` patterns.
        name: Option<String>,
        ty: Option<Ty>,
        init: Option<Expr>,
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
}

#[derive(Debug, Clone)]
pub enum Expr {
    /// `a::b::c` (also bare idents and `self`).
    Path(Vec<String>, u32),
    LitInt(String, u32),
    LitOther(u32),
    Call { callee: Box<Expr>, args: Vec<Expr>, line: u32 },
    Method { recv: Box<Expr>, name: String, args: Vec<Expr>, line: u32 },
    Field { recv: Box<Expr>, name: String, line: u32 },
    Index { recv: Box<Expr>, index: Box<Expr>, line: u32 },
    /// `name!(…)` — the argument tokens become an opaque span.
    Macro { name: String, line: u32 },
    Unsafe { body: Block, line: u32 },
    Block(Block),
    If { cond: Box<Expr>, then: Block, els: Option<Box<Expr>>, line: u32 },
    While { cond: Box<Expr>, body: Block, line: u32 },
    Loop { body: Block, line: u32 },
    For { iter: Box<Expr>, body: Block, line: u32 },
    /// Patterns and guards are opaque spans; arms are the body exprs.
    Match { scrut: Box<Expr>, arms: Vec<Expr>, line: u32 },
    Closure { body: Box<Expr>, line: u32 },
    StructLit { path: Vec<String>, fields: Vec<Expr>, line: u32 },
    /// Order-insensitive grouping: binary-operator chains, tuples, arrays,
    /// call-less parens. The lint never needs operator structure.
    Seq(Vec<Expr>, u32),
    Unknown(u32),
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path(_, l)
            | Expr::LitInt(_, l)
            | Expr::LitOther(l)
            | Expr::Call { line: l, .. }
            | Expr::Method { line: l, .. }
            | Expr::Field { line: l, .. }
            | Expr::Index { line: l, .. }
            | Expr::Macro { line: l, .. }
            | Expr::Unsafe { line: l, .. }
            | Expr::If { line: l, .. }
            | Expr::While { line: l, .. }
            | Expr::Loop { line: l, .. }
            | Expr::For { line: l, .. }
            | Expr::Match { line: l, .. }
            | Expr::Closure { line: l, .. }
            | Expr::StructLit { line: l, .. }
            | Expr::Seq(_, l)
            | Expr::Unknown(l) => *l,
            Expr::Block(b) => b.line,
        }
    }

    /// A stable textual key for simple place expressions: `rng`,
    /// `self.rng`, `cfg.seed`. `None` for anything computed.
    pub fn place_key(&self) -> Option<String> {
        match self {
            Expr::Path(segs, _) => Some(segs.join("::")),
            Expr::Field { recv, name, .. } => {
                Some(format!("{}.{}", recv.place_key()?, name))
            }
            _ => None,
        }
    }
}

/// Everything the lint extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Comment-free code tokens, in order (opaque spans index into this).
    pub tokens: Vec<Token>,
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    pub opaque: Vec<OpaqueSpan>,
    /// `unsafe` keywords seen at item level (`unsafe fn`, `unsafe impl`).
    pub item_unsafe: Vec<(u32, bool)>,
}

/// Pre-order walk over every expression reachable from a block,
/// descending into nested blocks, arms, and closure bodies.
pub fn walk_block<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
        }
    }
}

pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        Expr::Unsafe { body, .. } | Expr::Loop { body, .. } => walk_block(body, f),
        Expr::Block(b) => walk_block(b, f),
        Expr::If { cond, then, els, .. } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Match { scrut, arms, .. } => {
            walk_expr(scrut, f);
            for a in arms {
                walk_expr(a, f);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::StructLit { fields, .. } => {
            for e in fields {
                walk_expr(e, f);
            }
        }
        Expr::Seq(es, _) => {
            for e in es {
                walk_expr(e, f);
            }
        }
        Expr::Path(..)
        | Expr::LitInt(..)
        | Expr::LitOther(..)
        | Expr::Macro { .. }
        | Expr::Unknown(..) => {}
    }
}

/// Visit every statement reachable from a block, descending into nested
/// blocks inside expressions (for `let`-type checks and similar).
pub fn visit_stmts<'a>(b: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &b.stmts {
        f(s);
        match s {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    visit_expr_stmts(e, f);
                }
                if let Some(b) = else_block {
                    visit_stmts(b, f);
                }
            }
            Stmt::Expr(e) => visit_expr_stmts(e, f),
        }
    }
}

fn visit_expr_stmts<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Stmt)) {
    match e {
        Expr::Call { callee, args, .. } => {
            visit_expr_stmts(callee, f);
            for a in args {
                visit_expr_stmts(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            visit_expr_stmts(recv, f);
            for a in args {
                visit_expr_stmts(a, f);
            }
        }
        Expr::Field { recv, .. } => visit_expr_stmts(recv, f),
        Expr::Index { recv, index, .. } => {
            visit_expr_stmts(recv, f);
            visit_expr_stmts(index, f);
        }
        Expr::Unsafe { body, .. } | Expr::Loop { body, .. } => visit_stmts(body, f),
        Expr::Block(b) => visit_stmts(b, f),
        Expr::If { cond, then, els, .. } => {
            visit_expr_stmts(cond, f);
            visit_stmts(then, f);
            if let Some(e) = els {
                visit_expr_stmts(e, f);
            }
        }
        Expr::While { cond, body, .. } => {
            visit_expr_stmts(cond, f);
            visit_stmts(body, f);
        }
        Expr::For { iter, body, .. } => {
            visit_expr_stmts(iter, f);
            visit_stmts(body, f);
        }
        Expr::Match { scrut, arms, .. } => {
            visit_expr_stmts(scrut, f);
            for a in arms {
                visit_expr_stmts(a, f);
            }
        }
        Expr::Closure { body, .. } => visit_expr_stmts(body, f),
        Expr::StructLit { fields, .. } => {
            for e in fields {
                visit_expr_stmts(e, f);
            }
        }
        Expr::Seq(es, _) => {
            for e in es {
                visit_expr_stmts(e, f);
            }
        }
        Expr::Path(..)
        | Expr::LitInt(..)
        | Expr::LitOther(..)
        | Expr::Macro { .. }
        | Expr::Unknown(..) => {}
    }
}

/// Parse a source file. Never fails; see module docs for the opaque-span
/// fallback contract.
pub fn parse(src: &str) -> ParsedFile {
    let tokens: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.tok, Tok::Comment(_)))
        .collect();
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
        out: ParsedFile::default(),
        in_test: false,
        self_ty: None,
        modpath: Vec::new(),
    };
    p.items(usize::MAX);
    let mut out = p.out;
    out.tokens = tokens;
    out
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    out: ParsedFile,
    in_test: bool,
    self_ty: Option<String>,
    modpath: Vec<String>,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "union", "impl", "trait", "mod", "use", "extern", "const", "static",
    "type", "macro_rules", "pub", "unsafe", "async",
];

impl<'a> Parser<'a> {
    // ------------------------------------------------------- token utils

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek_at(off), Some(Tok::Punct(p)) if *p == c)
    }

    fn is_ident(&self, off: usize, s: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Ident(i)) if i == s)
    }

    fn ident(&self, off: usize) -> Option<&'a str> {
        match self.peek_at(off) {
            Some(Tok::Ident(i)) => Some(i.as_str()),
            _ => None,
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.is_punct(0, c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn opaque(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        let in_test = self.in_test;
        if let Some(last) = self.out.opaque.last_mut() {
            if last.end == start && last.in_test == in_test {
                last.end = end;
                return;
            }
        }
        self.out.opaque.push(OpaqueSpan { start, end, in_test });
    }

    /// Skip one balanced `(`/`[`/`{` group starting at the current token;
    /// leaves `pos` just past the matching close.
    fn skip_group(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            match self.peek() {
                Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                Some(Tok::Punct(')' | ']' | '}')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                None => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a `<…>` generic-argument group (current token is `<`).
    /// `->` inside (`Fn() -> T`) does not close the group.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_minus = false;
        while self.pos < self.toks.len() {
            match self.peek() {
                Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct('>')) if !prev_minus => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                Some(Tok::Punct('(' | '[')) => {
                    self.skip_group();
                    prev_minus = false;
                    continue;
                }
                None => return,
                _ => {}
            }
            prev_minus = matches!(self.peek(), Some(Tok::Punct('-')));
            self.bump();
        }
    }

    // ------------------------------------------------------------- types

    /// Parse a type, stopping at depth-0 `,` `;` `=` `)` `]` `}` `{` or
    /// an `=>`-like boundary the caller owns. Collects mentioned idents.
    fn ty(&mut self) -> Ty {
        let line = self.line();
        let mut text = String::new();
        let mut idents = Vec::new();
        let mut depth = 0i32;
        let mut prev_minus = false;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct(',' | ';' | '{') if depth == 0 => break,
                Tok::Punct('=') if depth == 0 => break,
                Tok::Punct(')' | ']') if depth == 0 => break,
                Tok::Punct('}') => break,
                Tok::Punct('<' | '(' | '[') => {
                    depth += 1;
                    text.push(match tok {
                        Tok::Punct(c) => *c,
                        _ => unreachable!(),
                    });
                }
                Tok::Punct('>') => {
                    if prev_minus {
                        // `->` return-type arrow inside fn-pointer types.
                        text.push('>');
                    } else {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                        text.push('>');
                    }
                }
                Tok::Punct(')' | ']') => {
                    depth -= 1;
                    text.push(match tok {
                        Tok::Punct(c) => *c,
                        _ => unreachable!(),
                    });
                }
                Tok::Ident(i) => {
                    // `ident ident` at depth 0 means the type ended and an
                    // expression-ish continuation began (`else`, `in`, …).
                    if depth == 0
                        && matches!(i.as_str(), "else" | "in")
                    {
                        break;
                    }
                    if !text.is_empty() && !text.ends_with([':', '<', '(', '[', '&', ' ']) {
                        text.push(' ');
                    }
                    text.push_str(i);
                    idents.push(i.clone());
                }
                Tok::Punct(c) => text.push(*c),
                Tok::Lifetime(l) => {
                    text.push('\'');
                    text.push_str(l);
                }
                Tok::Int(s) | Tok::Float(s) => text.push_str(s),
                Tok::Str | Tok::Char => text.push('_'),
                Tok::Comment(_) => {}
            }
            prev_minus = matches!(self.peek(), Some(Tok::Punct('-')));
            self.bump();
        }
        Ty { text, idents, line }
    }

    // ------------------------------------------------------------- items

    /// Parse items until a depth-0 `}` (or EOF). `limit` bounds recursion
    /// paranoia only.
    fn items(&mut self, _limit: usize) {
        while self.pos < self.toks.len() {
            if self.is_punct(0, '}') {
                return;
            }
            let before = self.pos;
            self.item();
            if self.pos == before {
                // Recovery: record and skip one token so we always advance.
                self.opaque(self.pos, self.pos + 1);
                self.bump();
            }
        }
    }

    fn item(&mut self) {
        // Attributes: `#[…]` / `#![…]`; `cfg(… test …)` marks the item.
        let mut attr_test = false;
        loop {
            if self.is_punct(0, '#') && (self.is_punct(1, '[') || (self.is_punct(1, '!') && self.is_punct(2, '['))) {
                let open = if self.is_punct(1, '[') { 1 } else { 2 };
                let is_cfg = self.ident(open + 1) == Some("cfg");
                let start = self.pos;
                self.pos += open;
                self.skip_group();
                if is_cfg
                    && self.toks[start..self.pos]
                        .iter()
                        .any(|t| matches!(&t.tok, Tok::Ident(i) if i == "test"))
                {
                    attr_test = true;
                }
                continue;
            }
            break;
        }
        let saved_test = self.in_test;
        self.in_test = saved_test || attr_test;

        // Modifiers before the item keyword.
        loop {
            if self.is_ident(0, "pub") {
                self.bump();
                if self.is_punct(0, '(') {
                    self.skip_group();
                }
            } else if self.is_ident(0, "async") || self.is_ident(0, "default") && self.ident(1).is_some() {
                self.bump();
            } else if self.is_ident(0, "unsafe")
                && (self.is_ident(1, "fn") || self.is_ident(1, "impl") || self.is_ident(1, "trait") || self.is_ident(1, "extern"))
            {
                let (line, in_test) = (self.line(), self.in_test);
                self.out.item_unsafe.push((line, in_test));
                self.bump();
            } else {
                break;
            }
        }

        match self.ident(0) {
            Some("fn") => self.item_fn(),
            Some("struct") => self.item_struct(),
            Some("impl") => self.item_impl(),
            Some("trait") => self.item_trait(),
            Some("mod") => self.item_mod(),
            Some("enum") | Some("union") => {
                // name, generics, body — opaque (variant payload types are
                // covered by the fallback scan).
                let start = self.pos;
                self.bump();
                while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
                    if self.is_punct(0, '<') {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                if self.is_punct(0, '{') {
                    self.skip_group();
                } else {
                    self.eat_punct(';');
                }
                self.opaque(start, self.pos);
            }
            Some("use") | Some("extern") | Some("const") | Some("static") | Some("type") => {
                // Opaque to the first depth-0 `;` (or `{…}` for
                // `extern { … }` blocks).
                let start = self.pos;
                self.bump();
                while self.pos < self.toks.len() {
                    if self.is_punct(0, ';') {
                        self.bump();
                        break;
                    }
                    if self.is_punct(0, '{') || self.is_punct(0, '(') || self.is_punct(0, '[') {
                        self.skip_group();
                        if self.toks.get(self.pos.wrapping_sub(1)).is_some_and(|t| t.tok == Tok::Punct('}')) {
                            break;
                        }
                        continue;
                    }
                    self.bump();
                }
                self.opaque(start, self.pos);
            }
            Some("macro_rules") => {
                let start = self.pos;
                self.bump(); // macro_rules
                self.eat_punct('!');
                if self.ident(0).is_some() {
                    self.bump();
                }
                if self.is_punct(0, '{') || self.is_punct(0, '(') || self.is_punct(0, '[') {
                    self.skip_group();
                }
                self.eat_punct(';');
                self.opaque(start, self.pos);
            }
            _ => {}
        }
        self.in_test = saved_test;
    }

    fn item_fn(&mut self) {
        let line = self.line();
        self.bump(); // fn
        let name = match self.ident(0) {
            Some(n) => {
                self.bump();
                n.to_string()
            }
            None => return,
        };
        if self.is_punct(0, '<') {
            // Generic params may mention banned types in bounds; keep the
            // fallback scan's eyes on them.
            let start = self.pos;
            self.skip_angles();
            self.opaque(start, self.pos);
        }
        let mut params = Vec::new();
        let mut takes_self = false;
        if self.is_punct(0, '(') {
            self.bump();
            while self.pos < self.toks.len() && !self.is_punct(0, ')') {
                // Param attributes.
                while self.is_punct(0, '#') && self.is_punct(1, '[') {
                    self.bump();
                    self.skip_group();
                }
                // `self` receivers: `self`, `&self`, `&'a mut self`, `mut self`.
                let mut off = 0;
                while self.is_punct(off, '&') {
                    off += 1;
                }
                if matches!(self.peek_at(off), Some(Tok::Lifetime(_))) {
                    off += 1;
                }
                if self.is_ident(off, "mut") {
                    off += 1;
                }
                if self.is_ident(off, "self") {
                    takes_self = true;
                    self.pos += off + 1;
                    if self.eat_punct(':') {
                        let _ = self.ty();
                    }
                    self.eat_punct(',');
                    continue;
                }
                // Pattern: simple `[mut] name : ty` keeps the name;
                // anything else is skipped to the `:`.
                if self.is_ident(0, "mut") {
                    self.bump();
                }
                let pname = if self.ident(0).is_some() && self.is_punct(1, ':') {
                    let n = self.ident(0).map(str::to_string);
                    self.bump();
                    n
                } else {
                    // Complex pattern — skip to depth-0 `:`.
                    let start = self.pos;
                    let mut depth = 0usize;
                    while self.pos < self.toks.len() {
                        match self.peek() {
                            Some(Tok::Punct('(' | '[')) => depth += 1,
                            Some(Tok::Punct(')')) if depth == 0 => break,
                            Some(Tok::Punct(')' | ']')) => depth -= 1,
                            Some(Tok::Punct(':')) if depth == 0 => break,
                            Some(Tok::Punct(',')) if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    self.opaque(start, self.pos);
                    None
                };
                if self.eat_punct(':') {
                    let ty = self.ty();
                    params.push(Param { name: pname, ty });
                }
                self.eat_punct(',');
            }
            self.eat_punct(')');
        }
        // Return type.
        let ret = if self.is_punct(0, '-') && self.is_punct(1, '>') {
            self.bump();
            self.bump();
            Some(self.ty())
        } else {
            None
        };
        // Where clause: skip to `{` or `;`.
        if self.is_ident(0, "where") {
            let start = self.pos;
            while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
                if self.is_punct(0, '<') {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
            self.opaque(start, self.pos);
        }
        let body = if self.is_punct(0, '{') {
            Some(self.block())
        } else {
            self.eat_punct(';');
            None
        };
        self.out.fns.push(FnDef {
            name,
            self_ty: self.self_ty.clone(),
            modpath: self.modpath.clone(),
            takes_self,
            params,
            ret,
            body,
            line,
            in_test: self.in_test,
        });
    }

    fn item_struct(&mut self) {
        let line = self.line();
        self.bump(); // struct
        let name = match self.ident(0) {
            Some(n) => {
                self.bump();
                n.to_string()
            }
            None => return,
        };
        if self.is_punct(0, '<') {
            self.skip_angles();
        }
        if self.is_ident(0, "where") {
            while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, '(') && !self.is_punct(0, ';') {
                if self.is_punct(0, '<') {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        let mut fields = Vec::new();
        if self.is_punct(0, '{') {
            self.bump();
            while self.pos < self.toks.len() && !self.is_punct(0, '}') {
                while self.is_punct(0, '#') && self.is_punct(1, '[') {
                    self.bump();
                    self.skip_group();
                }
                if self.is_ident(0, "pub") {
                    self.bump();
                    if self.is_punct(0, '(') {
                        self.skip_group();
                    }
                }
                if let Some(fname) = self.ident(0) {
                    let fname = fname.to_string();
                    self.bump();
                    if self.eat_punct(':') {
                        let ty = self.ty();
                        fields.push((fname, ty));
                    }
                }
                if !self.eat_punct(',') && !self.is_punct(0, '}') {
                    // Recovery inside the field list.
                    self.bump();
                }
            }
            self.eat_punct('}');
        } else if self.is_punct(0, '(') {
            // Tuple struct: fields named by index.
            self.bump();
            let mut idx = 0usize;
            while self.pos < self.toks.len() && !self.is_punct(0, ')') {
                while self.is_punct(0, '#') && self.is_punct(1, '[') {
                    self.bump();
                    self.skip_group();
                }
                if self.is_ident(0, "pub") {
                    self.bump();
                    if self.is_punct(0, '(') {
                        self.skip_group();
                    }
                }
                let ty = self.ty();
                if !ty.text.is_empty() {
                    fields.push((idx.to_string(), ty));
                    idx += 1;
                }
                if !self.eat_punct(',') && !self.is_punct(0, ')') {
                    self.bump();
                }
            }
            self.eat_punct(')');
            self.eat_punct(';');
        } else {
            self.eat_punct(';');
        }
        self.out.structs.push(StructDef { name, fields, line, in_test: self.in_test });
    }

    fn item_impl(&mut self) {
        self.bump(); // impl
        if self.is_punct(0, '<') {
            self.skip_angles();
        }
        // `impl Type {` or `impl Trait for Type {` — the self type is the
        // last path segment before the body (after `for` when present).
        let mut last_seg: Option<String> = None;
        while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
            if self.is_ident(0, "for") {
                last_seg = None;
                self.bump();
                continue;
            }
            if self.is_ident(0, "where") {
                while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
                    if self.is_punct(0, '<') {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            if let Some(i) = self.ident(0) {
                last_seg = Some(i.to_string());
                self.bump();
                continue;
            }
            if self.is_punct(0, '<') {
                self.skip_angles();
                continue;
            }
            self.bump();
        }
        if self.is_punct(0, '{') {
            self.bump();
            let saved = self.self_ty.take();
            self.self_ty = last_seg;
            self.items(usize::MAX);
            self.self_ty = saved;
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
    }

    fn item_trait(&mut self) {
        self.bump(); // trait
        let name = self.ident(0).map(str::to_string);
        if name.is_some() {
            self.bump();
        }
        while self.pos < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
            if self.is_punct(0, '<') {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        if self.is_punct(0, '{') {
            self.bump();
            let saved = self.self_ty.take();
            self.self_ty = name;
            self.items(usize::MAX);
            self.self_ty = saved;
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
    }

    fn item_mod(&mut self) {
        self.bump(); // mod
        let name = self.ident(0).map(str::to_string);
        if name.is_some() {
            self.bump();
        }
        if self.is_punct(0, '{') {
            self.bump();
            if let Some(n) = name {
                self.modpath.push(n);
                self.items(usize::MAX);
                self.modpath.pop();
            } else {
                self.items(usize::MAX);
            }
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
    }

    // ------------------------------------------------------------ blocks

    /// Parse `{ … }`; current token must be `{`.
    fn block(&mut self) -> Block {
        let line = self.line();
        let mut stmts = Vec::new();
        if !self.eat_punct('{') {
            return Block { stmts, line };
        }
        while self.pos < self.toks.len() && !self.is_punct(0, '}') {
            let before = self.pos;
            let saved_test = self.in_test;
            if self.eat_punct(';') {
                continue;
            }
            // Statement-level attributes.
            while self.is_punct(0, '#') && self.is_punct(1, '[') {
                let is_cfg = self.ident(2) == Some("cfg");
                let start = self.pos;
                self.bump();
                self.skip_group();
                if is_cfg
                    && self.toks[start..self.pos]
                        .iter()
                        .any(|t| matches!(&t.tok, Tok::Ident(i) if i == "test"))
                {
                    // A cfg(test)-gated statement: treat the next statement
                    // as test code by parsing it under the flag.
                    self.in_test = true;
                }
            }
            if self.is_ident(0, "let") {
                stmts.push(self.stmt_let());
            } else if self
                .ident(0)
                .is_some_and(|i| ITEM_KEYWORDS.contains(&i) && self.starts_item())
            {
                self.item();
            } else {
                let e = self.expr(false);
                stmts.push(Stmt::Expr(e));
                self.eat_punct(';');
            }
            self.in_test = saved_test;
            if self.pos == before {
                self.opaque(self.pos, self.pos + 1);
                self.bump();
            }
        }
        self.eat_punct('}');
        Block { stmts, line }
    }

    /// Disambiguate item keywords that are also expression-ish (`unsafe`,
    /// plain idents used as macro names, …) in statement position.
    fn starts_item(&self) -> bool {
        match self.ident(0) {
            Some("unsafe") => {
                // `unsafe { … }` is an expression; `unsafe fn` is an item.
                self.is_ident(1, "fn") || self.is_ident(1, "impl") || self.is_ident(1, "trait")
            }
            Some("pub") | Some("fn") | Some("struct") | Some("enum") | Some("union")
            | Some("impl") | Some("trait") | Some("mod") | Some("use") | Some("extern")
            | Some("static") | Some("macro_rules") => true,
            Some("const") => {
                // `const NAME: …` item vs. `const { … }` block / `const fn`.
                !self.is_punct(1, '{')
            }
            Some("type") => self.ident(1).is_some(),
            Some("async") => self.is_ident(1, "fn"),
            _ => false,
        }
    }

    fn stmt_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        if self.is_ident(0, "mut") {
            self.bump();
        }
        // Simple-name pattern or opaque pattern.
        let name = if self.ident(0).is_some()
            && (self.is_punct(1, ':') || self.is_punct(1, '=') || self.is_punct(1, ';'))
            && !self.is_punct(2, '=') // `name ==` can't happen; `name :=` never
        {
            let n = self.ident(0).map(str::to_string);
            self.bump();
            n
        } else {
            // Complex pattern: skip to depth-0 `:` / `=` / `;` (a `=`
            // right after `.` is `..=` and stays inside the pattern).
            let start = self.pos;
            let mut depth = 0usize;
            let mut prev_dot = false;
            while self.pos < self.toks.len() {
                match self.peek() {
                    Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                    Some(Tok::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
                    Some(Tok::Punct(':')) if depth == 0 && !self.is_punct(1, ':') => break,
                    Some(Tok::Punct(':')) if depth == 0 && self.is_punct(1, ':') => {
                        self.bump(); // path separator inside the pattern
                    }
                    Some(Tok::Punct('=')) if depth == 0 && !prev_dot => break,
                    Some(Tok::Punct(';')) if depth == 0 => break,
                    _ => {}
                }
                prev_dot = matches!(self.peek(), Some(Tok::Punct('.')));
                self.bump();
            }
            self.opaque(start, self.pos);
            None
        };
        let ty = if self.is_punct(0, ':') && !self.is_punct(1, ':') {
            self.bump();
            Some(self.ty())
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.expr(false))
        } else {
            None
        };
        let else_block = if self.is_ident(0, "else") && self.is_punct(1, '{') {
            self.bump();
            Some(self.block())
        } else {
            None
        };
        self.eat_punct(';');
        Stmt::Let { name, ty, init, else_block, line }
    }

    // ------------------------------------------------------- expressions

    /// Parse an expression. `no_struct_lit` is set in `if`/`while`/
    /// `match`/`for` head positions, where `Path {` opens the body, not a
    /// struct literal.
    fn expr(&mut self, no_struct_lit: bool) -> Expr {
        let line = self.line();
        let first = self.operand(no_struct_lit);
        let mut parts = vec![first];
        loop {
            // `as Type` casts.
            if self.is_ident(0, "as") {
                self.bump();
                let _ = self.ty();
                continue;
            }
            // Range `..` / `..=`.
            if self.is_punct(0, '.') && self.is_punct(1, '.') {
                self.bump();
                self.bump();
                self.eat_punct('=');
                if self.range_end_follows(no_struct_lit) {
                    parts.push(self.operand(no_struct_lit));
                }
                continue;
            }
            // Binary / assignment operators (single-char punct stream).
            let is_binop = match self.peek() {
                Some(Tok::Punct(c)) => matches!(c, '+' | '-' | '*' | '/' | '%' | '^' | '=' | '<' | '>' | '|' | '&'),
                _ => false,
            };
            if !is_binop {
                break;
            }
            // `=>`, `->`, and statement terminators are not chains.
            if self.is_punct(0, '=') && self.is_punct(1, '>') {
                break;
            }
            if self.is_punct(0, '-') && self.is_punct(1, '>') {
                break;
            }
            // Consume the operator run (`<<=`, `&&`, `==`, …).
            while matches!(
                self.peek(),
                Some(Tok::Punct('+' | '-' | '*' | '/' | '%' | '^' | '=' | '<' | '>' | '|' | '&' | '!'))
            ) {
                if self.is_punct(0, '=') && self.is_punct(1, '>') {
                    break;
                }
                self.bump();
                // Unary prefixes of the right operand end the run.
                if !matches!(self.peek(), Some(Tok::Punct('=' | '<' | '>' | '|' | '&'))) {
                    break;
                }
            }
            if self.operand_follows(no_struct_lit) {
                parts.push(self.operand(no_struct_lit));
            } else {
                break;
            }
        }
        if parts.len() == 1 {
            parts.pop().unwrap_or(Expr::Unknown(line))
        } else {
            Expr::Seq(parts, line)
        }
    }

    fn range_end_follows(&self, no_struct_lit: bool) -> bool {
        match self.peek() {
            None | Some(Tok::Punct(')' | ']' | '}' | ',' | ';' | '=')) => false,
            Some(Tok::Punct('{')) => !no_struct_lit && false, // `{` never continues a range
            Some(Tok::Ident(i)) if i == "else" || i == "in" => false,
            _ => true,
        }
    }

    fn operand_follows(&self, _no_struct_lit: bool) -> bool {
        !matches!(
            self.peek(),
            None | Some(Tok::Punct(')' | ']' | '}' | '{' | ',' | ';'))
        )
    }

    fn operand(&mut self, nsl: bool) -> Expr {
        // Unary prefixes.
        loop {
            match self.peek() {
                Some(Tok::Punct('&')) => {
                    self.bump();
                    if self.is_ident(0, "mut") {
                        self.bump();
                    }
                }
                Some(Tok::Punct('*' | '-' | '!')) => self.bump(),
                Some(Tok::Ident(i)) if i == "move" && (self.is_punct(1, '|') || self.is_ident(1, "async")) => {
                    self.bump()
                }
                _ => break,
            }
        }
        // Loop labels: `'name: loop/while/for/{`.
        if matches!(self.peek(), Some(Tok::Lifetime(_))) && self.is_punct(1, ':') {
            self.bump();
            self.bump();
        }
        let prim = self.primary(nsl);
        self.postfix(prim)
    }

    fn primary(&mut self, nsl: bool) -> Expr {
        let line = self.line();
        match self.peek() {
            Some(Tok::Int(s)) => {
                let s = s.clone();
                self.bump();
                Expr::LitInt(s, line)
            }
            Some(Tok::Float(_)) | Some(Tok::Str) | Some(Tok::Char) => {
                self.bump();
                Expr::LitOther(line)
            }
            Some(Tok::Punct('(')) => {
                self.bump();
                let mut es = Vec::new();
                while self.pos < self.toks.len() && !self.is_punct(0, ')') {
                    es.push(self.expr(false));
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.eat_punct(')');
                match es.len() {
                    1 => es.pop().unwrap_or(Expr::Unknown(line)),
                    _ => Expr::Seq(es, line),
                }
            }
            Some(Tok::Punct('[')) => {
                self.bump();
                let mut es = Vec::new();
                while self.pos < self.toks.len() && !self.is_punct(0, ']') {
                    es.push(self.expr(false));
                    if !self.eat_punct(',') && !self.eat_punct(';') {
                        break;
                    }
                }
                self.eat_punct(']');
                Expr::Seq(es, line)
            }
            Some(Tok::Punct('{')) => Expr::Block(self.block()),
            Some(Tok::Punct('|')) => {
                // Closure: `|params| body` or `|| body`.
                self.bump();
                if !self.eat_punct('|') {
                    let start = self.pos;
                    let mut depth = 0usize;
                    while self.pos < self.toks.len() {
                        match self.peek() {
                            Some(Tok::Punct('(' | '[' | '<')) => depth += 1,
                            Some(Tok::Punct(')' | ']' | '>')) => depth = depth.saturating_sub(1),
                            Some(Tok::Punct('|')) if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    self.opaque(start, self.pos);
                    self.eat_punct('|');
                }
                if self.is_punct(0, '-') && self.is_punct(1, '>') {
                    self.bump();
                    self.bump();
                    let _ = self.ty();
                }
                let body = self.expr(false);
                Expr::Closure { body: Box::new(body), line }
            }
            Some(Tok::Punct('<')) => {
                // Qualified path `<T as Tr>::assoc(…)`.
                self.skip_angles();
                let mut segs = vec!["<qualified>".to_string()];
                while self.is_punct(0, ':') && self.is_punct(1, ':') {
                    self.bump();
                    self.bump();
                    if self.is_punct(0, '<') {
                        self.skip_angles();
                        continue;
                    }
                    match self.ident(0) {
                        Some(i) => {
                            segs.push(i.to_string());
                            self.bump();
                        }
                        None => break,
                    }
                }
                Expr::Path(segs, line)
            }
            Some(Tok::Ident(i)) => {
                match i.as_str() {
                    "if" => return self.expr_if(),
                    "while" => return self.expr_while(),
                    "loop" => {
                        self.bump();
                        let body = self.block();
                        return Expr::Loop { body, line };
                    }
                    "for" => return self.expr_for(),
                    "match" => return self.expr_match(),
                    "unsafe" => {
                        self.bump();
                        let body = self.block();
                        return Expr::Unsafe { body, line };
                    }
                    "return" | "break" => {
                        self.bump();
                        if matches!(self.peek(), Some(Tok::Lifetime(_))) {
                            self.bump();
                        }
                        if self.operand_follows(nsl) && !self.is_ident(0, "else") {
                            return self.expr(nsl);
                        }
                        return Expr::Unknown(line);
                    }
                    "continue" => {
                        self.bump();
                        if matches!(self.peek(), Some(Tok::Lifetime(_))) {
                            self.bump();
                        }
                        return Expr::Unknown(line);
                    }
                    _ => {}
                }
                self.path_expr(nsl)
            }
            _ => {
                self.bump();
                Expr::Unknown(line)
            }
        }
    }

    /// Path, macro call, or struct literal.
    fn path_expr(&mut self, nsl: bool) -> Expr {
        let line = self.line();
        let mut segs: Vec<String> = Vec::new();
        loop {
            match self.ident(0) {
                Some(i) => {
                    segs.push(i.to_string());
                    self.bump();
                }
                None => break,
            }
            // Macro call: `name!(…)` / `path::name![…]`.
            if self.is_punct(0, '!') && (self.is_punct(1, '(') || self.is_punct(1, '[') || self.is_punct(1, '{')) {
                self.bump(); // !
                let start = self.pos;
                self.skip_group();
                self.opaque(start, self.pos);
                let name = segs.last().cloned().unwrap_or_default();
                return Expr::Macro { name, line };
            }
            if self.is_punct(0, ':') && self.is_punct(1, ':') {
                self.bump();
                self.bump();
                if self.is_punct(0, '<') {
                    // Turbofish.
                    self.skip_angles();
                    if self.is_punct(0, ':') && self.is_punct(1, ':') {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return Expr::Unknown(line);
        }
        // Struct literal.
        if self.is_punct(0, '{') && !nsl {
            self.bump();
            let mut fields = Vec::new();
            while self.pos < self.toks.len() && !self.is_punct(0, '}') {
                if self.is_punct(0, '.') && self.is_punct(1, '.') {
                    self.bump();
                    self.bump();
                    fields.push(self.expr(false));
                } else if self.ident(0).is_some() && self.is_punct(1, ':') && !self.is_punct(2, ':') {
                    self.bump(); // field name
                    self.bump(); // :
                    fields.push(self.expr(false));
                } else if let Some(f) = self.ident(0) {
                    // Shorthand `field,`.
                    fields.push(Expr::Path(vec![f.to_string()], self.line()));
                    self.bump();
                } else {
                    self.bump();
                }
                self.eat_punct(',');
            }
            self.eat_punct('}');
            return Expr::StructLit { path: segs, fields, line };
        }
        Expr::Path(segs, line)
    }

    fn postfix(&mut self, mut e: Expr) -> Expr {
        loop {
            let line = self.line();
            if self.is_punct(0, '?') {
                self.bump();
                continue;
            }
            if self.is_punct(0, '.') && !self.is_punct(1, '.') {
                // `.await`, `.name`, `.name(…)`, `.name::<T>(…)`, `.0`.
                match self.peek_at(1) {
                    Some(Tok::Ident(name)) => {
                        let name = name.clone();
                        self.bump();
                        self.bump();
                        if name == "await" {
                            continue;
                        }
                        // Method turbofish.
                        if self.is_punct(0, ':') && self.is_punct(1, ':') && self.is_punct(2, '<') {
                            self.bump();
                            self.bump();
                            self.skip_angles();
                        }
                        if self.is_punct(0, '(') {
                            let args = self.call_args();
                            e = Expr::Method { recv: Box::new(e), name, args, line };
                        } else {
                            e = Expr::Field { recv: Box::new(e), name, line };
                        }
                        continue;
                    }
                    Some(Tok::Int(n)) | Some(Tok::Float(n)) => {
                        // Tuple index (floats cover `x.0.1` lexing quirks).
                        let name = n.clone();
                        self.bump();
                        self.bump();
                        e = Expr::Field { recv: Box::new(e), name, line };
                        continue;
                    }
                    _ => break,
                }
            }
            if self.is_punct(0, '(') {
                let args = self.call_args();
                e = Expr::Call { callee: Box::new(e), args, line };
                continue;
            }
            if self.is_punct(0, '[') {
                self.bump();
                let idx = self.expr(false);
                self.eat_punct(']');
                e = Expr::Index { recv: Box::new(e), index: Box::new(idx), line };
                continue;
            }
            break;
        }
        e
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.eat_punct('(');
        while self.pos < self.toks.len() && !self.is_punct(0, ')') {
            args.push(self.expr(false));
            if !self.eat_punct(',') {
                break;
            }
        }
        self.eat_punct(')');
        args
    }

    fn expr_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // if
        if self.is_ident(0, "let") {
            self.skip_let_pattern();
        }
        let cond = self.expr(true);
        let then = self.block();
        let els = if self.is_ident(0, "else") {
            self.bump();
            Some(Box::new(if self.is_ident(0, "if") {
                self.expr_if()
            } else {
                Expr::Block(self.block())
            }))
        } else {
            None
        };
        Expr::If { cond: Box::new(cond), then, els, line }
    }

    fn expr_while(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // while
        if self.is_ident(0, "let") {
            self.skip_let_pattern();
        }
        let cond = self.expr(true);
        let body = self.block();
        Expr::While { cond: Box::new(cond), body, line }
    }

    fn expr_for(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // for
        // Skip the loop pattern to the depth-0 `in`.
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            match self.peek() {
                Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                Some(Tok::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
                Some(Tok::Ident(i)) if i == "in" && depth == 0 => break,
                _ => {}
            }
            self.bump();
        }
        self.opaque(start, self.pos);
        self.bump(); // in
        let iter = self.expr(true);
        let body = self.block();
        Expr::For { iter: Box::new(iter), body, line }
    }

    fn expr_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // match
        let scrut = self.expr(true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            while self.pos < self.toks.len() && !self.is_punct(0, '}') {
                // Pattern + optional guard, opaque, up to the depth-0 `=>`.
                let start = self.pos;
                let mut depth = 0usize;
                while self.pos < self.toks.len() {
                    match self.peek() {
                        Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                        Some(Tok::Punct(')' | ']')) => depth = depth.saturating_sub(1),
                        Some(Tok::Punct('}')) => {
                            if depth == 0 {
                                break; // stray close: end of match body
                            }
                            depth -= 1;
                        }
                        Some(Tok::Punct('=')) if depth == 0 && self.is_punct(1, '>') => break,
                        _ => {}
                    }
                    self.bump();
                }
                self.opaque(start, self.pos);
                if self.is_punct(0, '}') {
                    break;
                }
                self.bump(); // =
                self.bump(); // >
                arms.push(self.expr(false));
                self.eat_punct(',');
            }
            self.eat_punct('}');
        }
        Expr::Match { scrut: Box::new(scrut), arms, line }
    }

    /// Skip `let PATTERN =` inside `if let` / `while let` heads; stops
    /// just past the `=` (`..=` inside the pattern stays inside it).
    fn skip_let_pattern(&mut self) {
        self.bump(); // let
        let start = self.pos;
        let mut depth = 0usize;
        let mut prev_dot = false;
        while self.pos < self.toks.len() {
            match self.peek() {
                Some(Tok::Punct('(' | '[' | '{')) => depth += 1,
                Some(Tok::Punct(')' | ']' | '}')) => depth = depth.saturating_sub(1),
                Some(Tok::Punct('=')) if depth == 0 && !prev_dot && !self.is_punct(1, '=') => {
                    self.opaque(start, self.pos);
                    self.bump();
                    return;
                }
                _ => {}
            }
            prev_dot = matches!(self.peek(), Some(Tok::Punct('.')));
            self.bump();
        }
        self.opaque(start, self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_fns(src: &str) -> ParsedFile {
        parse(src)
    }

    #[test]
    fn fn_with_params_and_body() {
        let f = parse_fns("fn add(a: u64, b: u64) -> u64 { a + b }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "add");
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].params[0].name.as_deref(), Some("a"));
        assert!(f.fns[0].params[0].ty.mentions("u64"));
        assert!(f.fns[0].body.is_some());
    }

    #[test]
    fn impl_methods_get_self_ty() {
        let f = parse_fns("struct S { x: RwLock<u32> } impl S { fn go(&mut self) { self.x.write(); } }");
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.structs[0].fields[0].0, "x");
        assert!(f.structs[0].fields[0].1.mentions("RwLock"));
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("S"));
        assert!(f.fns[0].takes_self);
    }

    #[test]
    fn method_chain_shapes() {
        let f = parse_fns("fn g(rng: &mut SimRng) { let x = rng.fork(3); x.unit(); }");
        let body = f.fns[0].body.as_ref().unwrap();
        let mut methods = Vec::new();
        walk_block(body, &mut |e| {
            if let Expr::Method { name, .. } = e {
                methods.push(name.clone());
            }
        });
        assert_eq!(methods, ["fork", "unit"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let f = parse_fns(
            "#[cfg(test)] mod t { fn a() {} }\nfn b() {}\n#[cfg(test)]\n#[allow(dead_code)]\nfn c() {}",
        );
        let by_name: Vec<(String, bool)> =
            f.fns.iter().map(|f| (f.name.clone(), f.in_test)).collect();
        assert_eq!(
            by_name,
            [("a".into(), true), ("b".into(), false), ("c".into(), true)]
        );
    }

    #[test]
    fn struct_lit_vs_block_in_if() {
        let f = parse_fns("fn f(c: bool) -> S { if c { S { v: 1 } } else { S { v: 2 } } }");
        let body = f.fns[0].body.as_ref().unwrap();
        let mut lits = 0;
        walk_block(body, &mut |e| {
            if matches!(e, Expr::StructLit { .. }) {
                lits += 1;
            }
        });
        assert_eq!(lits, 2);
    }

    #[test]
    fn macros_become_opaque_spans() {
        let f = parse_fns("fn f() { println!(\"{}\", HashMap::<u32,u32>::new().len()); }");
        assert!(!f.opaque.is_empty());
        // The macro args land in an opaque span covering HashMap.
        let covered = f.opaque.iter().any(|s| {
            f.tokens[s.start..s.end]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(i) if i == "HashMap"))
        });
        assert!(covered);
    }

    #[test]
    fn match_arms_parse_bodies() {
        let src = "fn f(x: Option<u32>) -> u32 { match x { Some(v) if v > 2 => v.min(9), None => 0, _ => h(), } }";
        let f = parse_fns(src);
        let body = f.fns[0].body.as_ref().unwrap();
        let mut calls = Vec::new();
        walk_block(body, &mut |e| match e {
            Expr::Call { callee, .. } => {
                if let Expr::Path(p, _) = callee.as_ref() {
                    calls.push(p.join("::"));
                }
            }
            Expr::Method { name, .. } => calls.push(format!(".{name}")),
            _ => {}
        });
        assert!(calls.contains(&".min".to_string()), "{calls:?}");
        assert!(calls.contains(&"h".to_string()), "{calls:?}");
    }

    #[test]
    fn index_and_field_shapes() {
        let f = parse_fns("fn f(&self) { let r = &self.dep.regions[0]; r.go(); }");
        let body = f.fns[0].body.as_ref().unwrap();
        let mut found = false;
        walk_block(body, &mut |e| {
            if let Expr::Index { recv, index, .. } = e {
                if matches!(index.as_ref(), Expr::LitInt(s, _) if s == "0") {
                    found = recv.place_key().as_deref() == Some("self.dep.regions");
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn let_else_and_if_let() {
        let src = r"
            fn f(x: Option<u32>) -> u32 {
                let Some(v) = x else { return 0; };
                if let Some(w) = g(v) { w } else { v }
            }
        ";
        let f = parse_fns(src);
        assert_eq!(f.fns.len(), 1);
        let mut calls = 0;
        walk_block(f.fns[0].body.as_ref().unwrap(), &mut |e| {
            if matches!(e, Expr::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn parser_is_total_on_junk() {
        // Never panics, always terminates.
        for junk in [
            "} } ) ] fn",
            "fn f( { } }",
            "impl for for {",
            "match { => , }",
            "let = = ;",
            "fn f() { x.. }",
        ] {
            let _ = parse(junk);
        }
    }

    #[test]
    fn item_unsafe_is_recorded() {
        let f = parse_fns("unsafe fn scary() {} #[cfg(test)] unsafe fn test_only() {}");
        assert_eq!(f.item_unsafe.len(), 2);
        assert!(!f.item_unsafe[0].1);
        assert!(f.item_unsafe[1].1);
    }
}
