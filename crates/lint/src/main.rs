//! `scalewall-lint` CLI.
//!
//! ```text
//! scalewall-lint --workspace [--root DIR] [--json PATH]  # tiered scan
//! scalewall-lint --tier sim FILE...      # lint files under one tier
//! scalewall-lint --validate PATH         # check a v2 JSON report
//! ```
//!
//! `--json` writes a `scalewall-lint/v2` report (`-` for stdout);
//! `--validate` parses one and cross-checks its summary counts.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scalewall_lint::{
    find_workspace_root, json, lint_source, FileReport, RuleSet, WorkspaceReport,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: scalewall-lint --workspace [--root DIR] [--json PATH]\n       scalewall-lint --tier <sim|sim-rng-home|bench|plain> FILE...\n       scalewall-lint --validate PATH"
    );
    ExitCode::from(2)
}

fn print_report(report: &WorkspaceReport) {
    for file in &report.files {
        for v in &file.violations {
            println!("{}:{}: {}: {}", file.path, v.line, v.rule, v.message);
        }
    }
    let inventory = report.pragma_inventory();
    if !inventory.is_empty() {
        println!("pragma allows ({}):", inventory.len());
        for (path, p) in &inventory {
            let rules: Vec<String> = p.rules.iter().map(|r| r.to_string()).collect();
            println!(
                "  {}:{}: allow({}) -- {} [suppressed {}]",
                path,
                p.line,
                rules.join(","),
                p.reason,
                p.suppressed
            );
        }
    }
    println!(
        "scalewall-lint: {} violation(s), {} suppressed, {} file(s) scanned",
        report.violation_count(),
        report.suppressed_count(),
        report.files_scanned
    );
}

fn emit_json(report: &WorkspaceReport, path: &str) -> Result<(), String> {
    let text = json::to_json(report);
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
    }
}

fn run_workspace(root_arg: Option<PathBuf>, json_out: Option<String>) -> ExitCode {
    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("scalewall-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match scalewall_lint::lint_workspace(&root) {
        Ok(report) => {
            if let Some(path) = &json_out {
                if let Err(e) = emit_json(&report, path) {
                    eprintln!("scalewall-lint: {e}");
                    return ExitCode::from(2);
                }
            }
            if json_out.as_deref() != Some("-") {
                print_report(&report);
            }
            if report.violation_count() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("scalewall-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scalewall-lint: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match json::validate(&text) {
        Ok((violations, pragmas)) => {
            println!(
                "scalewall-lint: {path}: valid {} report ({violations} violation(s), {pragmas} pragma(s))",
                json::SCHEMA
            );
            if violations == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("scalewall-lint: {path}: invalid report: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_files(tier: &str, files: &[String]) -> ExitCode {
    let rules = match tier {
        "sim" => RuleSet::SIM,
        "sim-rng-home" => RuleSet::SIM_RNG_HOME,
        "bench" => RuleSet::BENCH,
        "plain" => RuleSet::PLAIN,
        _ => return usage(),
    };
    if files.is_empty() {
        return usage();
    }
    let mut report = WorkspaceReport::default();
    for f in files {
        let src = match std::fs::read_to_string(Path::new(f)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scalewall-lint: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        let (violations, pragmas) = lint_source(&src, rules);
        report.files_scanned += 1;
        report.files.push(FileReport {
            path: f.clone(),
            violations,
            pragmas,
        });
    }
    print_report(&report);
    if report.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--workspace") => {
            let mut root = None;
            let mut json_out = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--root" => match args.get(i + 1) {
                        Some(dir) => {
                            root = Some(PathBuf::from(dir));
                            i += 2;
                        }
                        None => return usage(),
                    },
                    "--json" => match args.get(i + 1) {
                        Some(path) => {
                            json_out = Some(path.clone());
                            i += 2;
                        }
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            run_workspace(root, json_out)
        }
        Some("--tier") => match args.get(1) {
            Some(tier) => run_files(tier, &args[2..]),
            None => usage(),
        },
        Some("--validate") => match args.get(1) {
            Some(path) => run_validate(path),
            None => usage(),
        },
        _ => usage(),
    }
}
