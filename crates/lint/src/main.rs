//! `scalewall-lint` CLI.
//!
//! ```text
//! scalewall-lint --workspace [--root DIR]   # tiered scan of the whole tree
//! scalewall-lint --tier sim FILE...         # lint files under one tier
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scalewall_lint::{
    find_workspace_root, lint_source, FileReport, RuleSet, WorkspaceReport,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: scalewall-lint --workspace [--root DIR]\n       scalewall-lint --tier <sim|sim-rng-home|bench|plain> FILE..."
    );
    ExitCode::from(2)
}

fn print_report(report: &WorkspaceReport) {
    for file in &report.files {
        for v in &file.violations {
            println!("{}:{}: {}: {}", file.path, v.line, v.rule, v.message);
        }
    }
    let inventory = report.pragma_inventory();
    if !inventory.is_empty() {
        println!("pragma allows ({}):", inventory.len());
        for (path, p) in &inventory {
            let rules: Vec<String> = p.rules.iter().map(|r| r.to_string()).collect();
            println!(
                "  {}:{}: allow({}) -- {} [suppressed {}]",
                path,
                p.line,
                rules.join(","),
                p.reason,
                p.suppressed
            );
        }
    }
    println!(
        "scalewall-lint: {} violation(s), {} suppressed, {} file(s) scanned",
        report.violation_count(),
        report.suppressed_count(),
        report.files_scanned
    );
}

fn run_workspace(root_arg: Option<PathBuf>) -> ExitCode {
    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("scalewall-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match scalewall_lint::lint_workspace(&root) {
        Ok(report) => {
            print_report(&report);
            if report.violation_count() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("scalewall-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_files(tier: &str, files: &[String]) -> ExitCode {
    let rules = match tier {
        "sim" => RuleSet::SIM,
        "sim-rng-home" => RuleSet::SIM_RNG_HOME,
        "bench" => RuleSet::BENCH,
        "plain" => RuleSet::PLAIN,
        _ => return usage(),
    };
    if files.is_empty() {
        return usage();
    }
    let mut report = WorkspaceReport::default();
    for f in files {
        let src = match std::fs::read_to_string(Path::new(f)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scalewall-lint: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        let (violations, pragmas) = lint_source(&src, rules);
        report.files_scanned += 1;
        report.files.push(FileReport {
            path: f.clone(),
            violations,
            pragmas,
        });
    }
    print_report(&report);
    if report.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--workspace") => {
            let root = match args.get(1).map(String::as_str) {
                Some("--root") => match args.get(2) {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => return usage(),
                },
                Some(_) => return usage(),
                None => None,
            };
            run_workspace(root)
        }
        Some("--tier") => match args.get(1) {
            Some(tier) => run_files(tier, &args[2..]),
            None => usage(),
        },
        _ => usage(),
    }
}
