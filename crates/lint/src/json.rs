//! `scalewall-lint/v2` JSON report: a hand-rolled writer and a strict
//! validator, so `scripts/verify.sh` can machine-check lint output
//! without the workspace growing a serde dependency (hermetic per PR 1).
//!
//! Schema (all keys required, no extras checked beyond these):
//!
//! ```json
//! {
//!   "schema": "scalewall-lint/v2",
//!   "files_scanned": 123,
//!   "violations": [ {"path": "...", "line": 7, "rule": "D5", "message": "..."} ],
//!   "pragmas":    [ {"path": "...", "line": 9, "rules": ["D2"], "reason": "...", "suppressed": 1} ],
//!   "summary":    { "violations": 0, "suppressed": 4, "pragmas": 4 }
//! }
//! ```
//!
//! The summary counts are redundant on purpose: the validator cross-checks
//! them against the arrays, so a truncated or hand-edited report fails
//! loudly instead of green-lighting a gate.

use crate::{RuleId, WorkspaceReport};

pub const SCHEMA: &str = "scalewall-lint/v2";

// ------------------------------------------------------------- writer

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a workspace report as a `scalewall-lint/v2` document.
pub fn to_json(report: &WorkspaceReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n  \"schema\": \"");
    s.push_str(SCHEMA);
    s.push_str("\",\n  \"files_scanned\": ");
    s.push_str(&report.files_scanned.to_string());
    s.push_str(",\n  \"violations\": [");
    let mut first = true;
    for f in &report.files {
        for v in &f.violations {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    {\"path\": ");
            esc(&f.path, &mut s);
            s.push_str(", \"line\": ");
            s.push_str(&v.line.to_string());
            s.push_str(", \"rule\": ");
            esc(&v.rule.to_string(), &mut s);
            s.push_str(", \"message\": ");
            esc(&v.message, &mut s);
            s.push('}');
        }
    }
    if !first {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"pragmas\": [");
    let mut first = true;
    for f in &report.files {
        for p in &f.pragmas {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    {\"path\": ");
            esc(&f.path, &mut s);
            s.push_str(", \"line\": ");
            s.push_str(&p.line.to_string());
            s.push_str(", \"rules\": [");
            for (i, r) in p.rules.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                esc(&r.to_string(), &mut s);
            }
            s.push_str("], \"reason\": ");
            esc(&p.reason, &mut s);
            s.push_str(", \"suppressed\": ");
            s.push_str(&p.suppressed.to_string());
            s.push('}');
        }
    }
    if !first {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"summary\": {\"violations\": ");
    s.push_str(&report.violation_count().to_string());
    s.push_str(", \"suppressed\": ");
    s.push_str(&report.suppressed_count().to_string());
    s.push_str(", \"pragmas\": ");
    let pragma_count: usize = report.files.iter().map(|f| f.pragmas.len()).sum();
    s.push_str(&pragma_count.to_string());
    s.push_str("}\n}\n");
    s
}

// ------------------------------------------------------------- parser

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_count(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> PResult<()> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                c as char,
                self.i,
                self.b.get(self.i).map(|&b| b as char)
            ))
        }
    }

    fn value(&mut self) -> PResult<Value> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|&b| b as char), self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> PResult<Value> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> PResult<Value> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> PResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| format!("invalid utf-8: {e}"))?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> PResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' (found {:?})", other.map(|&b| b as char))),
            }
        }
    }

    fn object(&mut self) -> PResult<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}' (found {:?})", other.map(|&b| b as char))),
            }
        }
    }
}

fn parse(text: &str) -> PResult<Value> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

// ---------------------------------------------------------- validator

fn count_field(obj: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_count()
        .ok_or_else(|| format!("{ctx}: {key:?} must be a non-negative integer"))
}

fn str_field<'a>(obj: &'a Value, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: {key:?} must be a string"))
}

/// Validate a `scalewall-lint/v2` document: schema tag, every required
/// key with the right type, rule names that parse, and summary counts
/// that match the arrays. Returns the `(violations, pragmas)` counts on
/// success so callers can gate without re-parsing.
pub fn validate(text: &str) -> Result<(u64, u64), String> {
    let doc = parse(text)?;
    if !matches!(doc, Value::Obj(_)) {
        return Err("top level must be an object".to_string());
    }
    let schema = str_field(&doc, "schema", "report")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    count_field(&doc, "files_scanned", "report")?;

    let violations = doc
        .get("violations")
        .ok_or("report: missing key \"violations\"")?
        .as_arr()
        .ok_or("report: \"violations\" must be an array")?;
    for (i, v) in violations.iter().enumerate() {
        let ctx = format!("violations[{i}]");
        str_field(v, "path", &ctx)?;
        count_field(v, "line", &ctx)?;
        str_field(v, "message", &ctx)?;
        let rule = str_field(v, "rule", &ctx)?;
        if RuleId::parse(rule).is_none() && rule != "pragma" {
            return Err(format!("{ctx}: unknown rule {rule:?}"));
        }
    }

    let pragmas = doc
        .get("pragmas")
        .ok_or("report: missing key \"pragmas\"")?
        .as_arr()
        .ok_or("report: \"pragmas\" must be an array")?;
    let mut suppressed_total = 0u64;
    for (i, p) in pragmas.iter().enumerate() {
        let ctx = format!("pragmas[{i}]");
        str_field(p, "path", &ctx)?;
        count_field(p, "line", &ctx)?;
        str_field(p, "reason", &ctx)?;
        suppressed_total += count_field(p, "suppressed", &ctx)?;
        let rules = p
            .get("rules")
            .ok_or_else(|| format!("{ctx}: missing key \"rules\""))?
            .as_arr()
            .ok_or_else(|| format!("{ctx}: \"rules\" must be an array"))?;
        if rules.is_empty() {
            return Err(format!("{ctx}: empty rules list"));
        }
        for r in rules {
            let name = r.as_str().ok_or_else(|| format!("{ctx}: rules entries must be strings"))?;
            if RuleId::parse(name).is_none() {
                return Err(format!("{ctx}: unknown rule {name:?}"));
            }
        }
    }

    let summary = doc.get("summary").ok_or("report: missing key \"summary\"")?;
    let s_viol = count_field(summary, "violations", "summary")?;
    let s_supp = count_field(summary, "suppressed", "summary")?;
    let s_prag = count_field(summary, "pragmas", "summary")?;
    if s_viol != violations.len() as u64 {
        return Err(format!(
            "summary.violations is {s_viol} but the violations array has {} entries",
            violations.len()
        ));
    }
    if s_prag != pragmas.len() as u64 {
        return Err(format!(
            "summary.pragmas is {s_prag} but the pragmas array has {} entries",
            pragmas.len()
        ));
    }
    if s_supp != suppressed_total {
        return Err(format!(
            "summary.suppressed is {s_supp} but pragma entries total {suppressed_total}"
        ));
    }
    Ok((s_viol, s_prag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileReport, PragmaUse, Violation};

    fn sample() -> WorkspaceReport {
        WorkspaceReport {
            files_scanned: 3,
            files: vec![FileReport {
                path: "crates/x/src/lib.rs".to_string(),
                violations: vec![Violation {
                    rule: RuleId::D5,
                    line: 12,
                    message: "fork label \"x\" reused\nacross lines".to_string(),
                }],
                pragmas: vec![PragmaUse {
                    line: 4,
                    rules: vec![RuleId::D2, RuleId::D1],
                    reason: "point lookups only".to_string(),
                    suppressed: 2,
                }],
            }],
        }
    }

    #[test]
    fn roundtrip_validates() {
        let text = to_json(&sample());
        let (v, p) = validate(&text).expect("sample must validate");
        assert_eq!((v, p), (1, 1));
    }

    #[test]
    fn empty_report_validates() {
        let text = to_json(&WorkspaceReport { files: Vec::new(), files_scanned: 57 });
        assert_eq!(validate(&text), Ok((0, 0)));
    }

    #[test]
    fn escapes_are_lossless() {
        let mut r = sample();
        r.files[0].violations[0].message = "quote \" slash \\ tab \t ctrl \u{1} done".to_string();
        let text = to_json(&r);
        assert!(validate(&text).is_ok(), "{text}");
        // The parser must round-trip the escaped message.
        let doc = parse(&text).unwrap();
        let msg = doc.get("violations").unwrap().as_arr().unwrap()[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(msg, r.files[0].violations[0].message);
    }

    #[test]
    fn wrong_schema_rejected() {
        let text = to_json(&sample()).replace("scalewall-lint/v2", "scalewall-lint/v1");
        assert!(validate(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn mismatched_summary_rejected() {
        let text = to_json(&sample()).replace("\"violations\": 1", "\"violations\": 0");
        assert!(validate(&text).unwrap_err().contains("summary.violations"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let text = to_json(&sample()).replace("\"rule\": \"D5\"", "\"rule\": \"D9\"");
        assert!(validate(&text).unwrap_err().contains("unknown rule"));
    }

    #[test]
    fn truncated_document_rejected() {
        let text = to_json(&sample());
        assert!(validate(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn missing_key_rejected() {
        let text = to_json(&WorkspaceReport::default()).replace("\"pragmas\": [],", "");
        assert!(validate(&text).unwrap_err().contains("pragmas"));
    }
}
