//! Workspace semantic analysis: symbol table, conservative call graph,
//! and the D5 (RNG stream discipline) / D6 (lock-order) rule engines.
//!
//! Everything here is deliberately *conservative* (DESIGN.md §5c): a lock
//! acquisition only counts when the receiver resolves to a field whose
//! declared type names `RwLock`/`Mutex` (or a local bound to one), and a
//! call edge only exists when the callee name resolves to exactly one
//! function in the workspace. Unresolvable receivers and ambiguous names
//! are dropped — the analysis can miss hazards (false negatives are
//! documented) but a reported cycle or duplicated fork label is real
//! modulo name collisions.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Block, Expr, ParsedFile, Stmt};
use crate::{Candidate, RuleId};

/// `SimRng` draw methods: calling any of these advances the stream
/// position, which is what makes a later re-fork position-dependent.
const DRAW_METHODS: &[&str] = &[
    "unit", "below", "range", "chance", "pick", "shuffle", "next_u64", "next_u32", "fill_bytes",
];

const LOCK_ACQUIRE: &[&str] = &["read", "write", "lock"];

/// Which replay-contract domain a function lives in, for the D5
/// workload→fault/backoff flow rule. Derived from file and module names
/// so single-file fixtures can express cross-domain flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Domain {
    Workload,
    Fault,
    Backoff,
    Other,
}

fn domain_of(path: &str, modpath: &[String], fn_name: &str) -> Domain {
    let p = path.replace('\\', "/").to_ascii_lowercase();
    let in_mod = |s: &str| modpath.iter().any(|m| m.contains(s));
    if fn_name == "backoff" || in_mod("backoff") {
        return Domain::Backoff;
    }
    if p.ends_with("fault.rs") || in_mod("fault") {
        return Domain::Fault;
    }
    if p.ends_with("workload.rs") || p.ends_with("driver.rs") || in_mod("workload") {
        return Domain::Workload;
    }
    Domain::Other
}

/// A call site the cross-file pass may resolve into the call graph.
#[derive(Debug, Clone)]
struct CallSite {
    callee: Callee,
    /// Locks held at the moment of the call.
    held: BTreeSet<String>,
    line: u32,
    /// Whether any argument mentions an RNG-typed binding of the caller.
    rng_arg: bool,
}

#[derive(Debug, Clone)]
enum Callee {
    /// Free function (or associated fn) called by bare name.
    Free(String),
    /// Method call `recv.name(…)`; `self_ty` is the caller's impl type
    /// when the receiver is `self`.
    Method { name: String, on_self: Option<String> },
}

/// Per-function facts extracted in the per-file phase.
#[derive(Debug, Clone)]
pub(crate) struct FnFacts {
    name: String,
    self_ty: Option<String>,
    takes_self: bool,
    domain: Domain,
    line: u32,
    direct_acqs: BTreeSet<String>,
    calls: Vec<CallSite>,
    /// Intra-function lock-order edges `(held, acquired, line)`.
    edges: Vec<(String, String, u32)>,
    /// Local D5/D6 candidates already final (same-lock nested acquire,
    /// duplicate fork labels, fork-after-draw).
    local: Vec<Candidate>,
}

/// Per-file step, run once every file's struct index exists so a
/// function can resolve fields of structs declared in *other* files.
pub(crate) fn extract_fns(
    path: &str,
    parsed: &ParsedFile,
    lock_fields: &BTreeMap<String, BTreeSet<String>>,
    field_types: &BTreeMap<String, BTreeMap<String, Vec<String>>>,
) -> Vec<FnFacts> {
    let mut out = Vec::new();
    for f in &parsed.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut w = FnWalk {
            facts: FnFacts {
                name: f.name.clone(),
                self_ty: f.self_ty.clone(),
                takes_self: f.takes_self,
                domain: domain_of(path, &f.modpath, &f.name),
                line: f.line,
                direct_acqs: BTreeSet::new(),
                calls: Vec::new(),
                edges: Vec::new(),
                local: Vec::new(),
            },
            lock_fields,
            field_types,
            local_tys: BTreeMap::new(),
            rng_idents: BTreeSet::new(),
            rng_state: BTreeMap::new(),
            fork_sites: BTreeMap::new(),
            scopes: vec![Vec::new()],
        };
        for p in &f.params {
            if let Some(name) = &p.name {
                if p.ty.idents.iter().any(|i| i.ends_with("Rng")) {
                    w.rng_idents.insert(name.clone());
                }
                w.local_tys.insert(name.clone(), p.ty.idents.clone());
            }
        }
        w.block(body);
        out.push(w.facts);
    }
    out
}

struct FnWalk<'a> {
    facts: FnFacts,
    lock_fields: &'a BTreeMap<String, BTreeSet<String>>,
    field_types: &'a BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// Local/param name → type idents (from annotations and lock inits).
    local_tys: BTreeMap<String, Vec<String>>,
    rng_idents: BTreeSet<String>,
    /// Local RNG stream state: false = freshly forked, true = drawn from.
    rng_state: BTreeMap<String, bool>,
    /// (receiver key, static label) → first fork line, for D5a.
    fork_sites: BTreeMap<(String, String), u32>,
    /// Stack of lock scopes; each holds `(lock id, guard name)` — guard
    /// `None` means transient (released at end of statement).
    scopes: Vec<Vec<(String, Option<String>)>>,
}

impl<'a> FnWalk<'a> {
    fn held(&self) -> BTreeSet<String> {
        self.scopes
            .iter()
            .flat_map(|s| s.iter().map(|(l, _)| l.clone()))
            .collect()
    }

    /// Resolve a lock-acquire receiver to a stable lock identity.
    fn lock_of(&self, recv: &Expr) -> Option<String> {
        let key = recv.place_key()?;
        let parts: Vec<&str> = key.split('.').collect();
        match parts.as_slice() {
            // `self.field`
            ["self", field] => {
                let ty = self.facts.self_ty.as_deref()?;
                if self.lock_fields.get(ty)?.contains(*field) {
                    Some(format!("{ty}::{field}"))
                } else {
                    None
                }
            }
            // Bare local or param of lock type.
            [name] => {
                let tys = self.local_tys.get(*name)?;
                if tys.iter().any(|i| i == "RwLock" || i == "Mutex") {
                    // Function-scoped identity: a local lock in one
                    // function is never the same object as anyone else's.
                    Some(format!("{}::{}::{}", self.qual(), self.facts.name, name))
                } else {
                    None
                }
            }
            // `x.field` where `x`'s declared type names a known struct.
            [name, field] => {
                let tys = self.local_tys.get(*name)?;
                let owner = tys.iter().find(|i| self.lock_fields.contains_key(*i))?;
                if self.lock_fields.get(owner)?.contains(*field) {
                    Some(format!("{owner}::{field}"))
                } else {
                    None
                }
            }
            // `self.a.b`: resolve `a`'s type through the field index.
            ["self", mid, field] => {
                let ty = self.facts.self_ty.as_deref()?;
                let mid_tys = self.field_types.get(ty)?.get(*mid)?;
                let owner = mid_tys.iter().find(|i| self.lock_fields.contains_key(*i))?;
                if self.lock_fields.get(owner)?.contains(*field) {
                    Some(format!("{owner}::{field}"))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn qual(&self) -> String {
        self.facts.self_ty.clone().unwrap_or_else(|| "<free>".into())
    }

    fn acquire(&mut self, lock: String, line: u32, guard: Option<String>) {
        let held = self.held();
        if held.contains(&lock) {
            self.facts.local.push(Candidate {
                rule: RuleId::D6,
                line,
                message: format!(
                    "`{lock}` acquired while already held in this function — nested same-lock acquire self-deadlocks under writer contention"
                ),
            });
        } else {
            for h in &held {
                self.facts.edges.push((h.clone(), lock.clone(), line));
            }
        }
        self.facts.direct_acqs.insert(lock.clone());
        if guard.is_some() {
            // Guard-bound: lives in the enclosing block scope (one below
            // the statement-transient scope).
            let idx = self.scopes.len().saturating_sub(2);
            self.scopes[idx].push((lock, guard));
        } else if let Some(top) = self.scopes.last_mut() {
            top.push((lock, None));
        }
    }

    fn release_guard(&mut self, name: &str) {
        for scope in self.scopes.iter_mut() {
            scope.retain(|(_, g)| g.as_deref() != Some(name));
        }
    }

    /// If `e` is (possibly behind one method layer) a lock acquisition,
    /// return the lock id — used to bind `let g = x.read();` guards.
    fn acquire_of(&self, e: &Expr) -> Option<(String, u32)> {
        if let Expr::Method { recv, name, line, .. } = e {
            if LOCK_ACQUIRE.contains(&name.as_str()) {
                return self.lock_of(recv).map(|l| (l, *line));
            }
        }
        None
    }

    fn block(&mut self, b: &Block) {
        self.scopes.push(Vec::new());
        for s in b.stmts.iter() {
            // Statement-transient scope for un-bound guards.
            self.scopes.push(Vec::new());
            match s {
                Stmt::Let { name, ty, init, else_block, .. } => {
                    let bound_acquire = init.as_ref().and_then(|e| self.acquire_of(e));
                    if let Some(e) = init {
                        match (&bound_acquire, name) {
                            (Some((lock, line)), Some(g)) => {
                                // Walk the receiver for nested effects,
                                // then record the guard-bound acquire.
                                if let Expr::Method { recv, args, .. } = e {
                                    self.expr(recv);
                                    for a in args {
                                        self.expr(a);
                                    }
                                }
                                self.acquire(lock.clone(), *line, Some(g.clone()));
                            }
                            _ => self.expr(e),
                        }
                    }
                    if let Some(name) = name {
                        // Track local types and RNG streams.
                        if let Some(t) = ty {
                            self.local_tys.insert(name.clone(), t.idents.clone());
                            if t.idents.iter().any(|i| i.ends_with("Rng")) {
                                self.rng_idents.insert(name.clone());
                            }
                        }
                        match init {
                            Some(Expr::Method { name: m, .. }) if m == "fork" => {
                                self.rng_idents.insert(name.clone());
                                self.rng_state.insert(name.clone(), false);
                            }
                            Some(Expr::Call { callee, .. }) => {
                                if let Expr::Path(segs, _) = callee.as_ref() {
                                    if segs.len() >= 2 {
                                        let ctor = &segs[segs.len() - 2];
                                        if segs.last().is_some_and(|l| l == "new") {
                                            if ctor.ends_with("Rng") {
                                                self.rng_idents.insert(name.clone());
                                                self.rng_state.insert(name.clone(), false);
                                            }
                                            if ctor == "RwLock" || ctor == "Mutex" {
                                                self.local_tys
                                                    .insert(name.clone(), vec![ctor.clone()]);
                                            }
                                        }
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
            }
            // End of statement: transient guards release.
            self.scopes.pop();
        }
        // End of block: guard-bound locks of this block release.
        self.scopes.pop();
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Method { recv, name, args, line } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                let recv_key = recv.place_key();
                if LOCK_ACQUIRE.contains(&name.as_str()) {
                    if let Some(lock) = self.lock_of(recv) {
                        self.acquire(lock, *line, None);
                        return;
                    }
                }
                if name == "fork" {
                    self.on_fork(recv_key.as_deref(), args, *line);
                    return;
                }
                if DRAW_METHODS.contains(&name.as_str()) {
                    if let Some(k) = &recv_key {
                        if let Some(state) = self.rng_state.get_mut(k) {
                            *state = true;
                        }
                    }
                    return;
                }
                // A plain method call: a call-graph edge candidate.
                let on_self = match recv.as_ref() {
                    Expr::Path(segs, _) if segs.len() == 1 && segs[0] == "self" => {
                        self.facts.self_ty.clone()
                    }
                    _ => None,
                };
                let rng_arg = args.iter().any(|a| self.mentions_rng(a));
                let held = self.held();
                self.facts.calls.push(CallSite {
                    callee: Callee::Method { name: name.clone(), on_self },
                    held,
                    line: *line,
                    rng_arg,
                });
            }
            Expr::Call { callee, args, line } => {
                for a in args {
                    self.expr(a);
                }
                if let Expr::Path(segs, _) = callee.as_ref() {
                    // `drop(guard)` releases a named guard early.
                    if segs.len() == 1 && segs[0] == "drop" {
                        if let Some(Expr::Path(g, _)) = args.first() {
                            if g.len() == 1 {
                                let name = g[0].clone();
                                self.release_guard(&name);
                                return;
                            }
                        }
                    }
                    let rng_arg = args.iter().any(|a| self.mentions_rng(a));
                    let held = self.held();
                    if let Some(name) = segs.last() {
                        self.facts.calls.push(CallSite {
                            callee: Callee::Free(name.clone()),
                            held,
                            line: *line,
                            rng_arg,
                        });
                    }
                } else {
                    self.expr(callee);
                }
            }
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Index { recv, index, .. } => {
                self.expr(recv);
                self.expr(index);
            }
            Expr::Unsafe { body, .. } | Expr::Loop { body, .. } => self.block(body),
            Expr::Block(b) => self.block(b),
            Expr::If { cond, then, els, .. } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Match { scrut, arms, .. } => {
                self.expr(scrut);
                for a in arms {
                    self.expr(a);
                }
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    self.expr(f);
                }
            }
            Expr::Seq(es, _) => {
                for e in es {
                    self.expr(e);
                }
            }
            Expr::Path(..)
            | Expr::LitInt(..)
            | Expr::LitOther(..)
            | Expr::Macro { .. }
            | Expr::Unknown(..) => {}
        }
    }

    fn on_fork(&mut self, recv_key: Option<&str>, args: &[Expr], line: u32) {
        // D5a: two fork sites under one static label on one stream.
        if let (Some(key), Some(label)) = (recv_key, args.first().and_then(static_label)) {
            let site = (key.to_string(), label.clone());
            if let Some(&first) = self.fork_sites.get(&site) {
                self.facts.local.push(Candidate {
                    rule: RuleId::D5,
                    line,
                    message: format!(
                        "`{key}.fork({label})` duplicates the fork label first used on line {first} — two children derived under one label collapse into the same stream"
                    ),
                });
            } else {
                self.fork_sites.insert(site, line);
            }
        }
        // D5b: re-forking a stored stream after drawing from it.
        if let Some(key) = recv_key {
            if self.rng_state.get(key).copied() == Some(true) {
                self.facts.local.push(Candidate {
                    rule: RuleId::D5,
                    line,
                    message: format!(
                        "`{key}` is re-forked after draws — the child stream's identity now depends on draw position; fork all children before drawing (\"fork before fan-out\")"
                    ),
                });
            }
        }
    }

    fn mentions_rng(&self, e: &Expr) -> bool {
        let mut found = false;
        crate::parser::walk_expr(e, &mut |sub| {
            if let Expr::Path(segs, _) = sub {
                if segs.len() == 1 && self.rng_idents.contains(&segs[0]) {
                    found = true;
                }
            }
        });
        found
    }
}

fn static_label(e: &Expr) -> Option<String> {
    match e {
        Expr::LitInt(s, _) => {
            // Normalize (`0x10` ≡ `16`, suffixes dropped) so textual
            // variants of the same label collide.
            let t = s.replace('_', "").to_ascii_lowercase();
            let (radix, digits) = if let Some(h) = t.strip_prefix("0x") {
                (16, h)
            } else if let Some(b) = t.strip_prefix("0b") {
                (2, b)
            } else if let Some(o) = t.strip_prefix("0o") {
                (8, o)
            } else {
                (10, t.as_str())
            };
            let digits: String = digits.chars().take_while(|c| c.is_digit(radix)).collect();
            let v = u128::from_str_radix(&digits, radix).ok();
            Some(v.map_or_else(|| s.clone(), |v| v.to_string()))
        }
        Expr::Path(segs, _) => {
            let last = segs.last()?;
            let screaming = last.len() > 1
                && last
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
            if screaming {
                Some(last.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------- cross-file

/// Run the cross-file analyses over every per-file fact set; returns
/// `(file index, candidate)` pairs.
pub(crate) fn cross(files: &[(usize, Vec<FnFacts>)]) -> Vec<(usize, Candidate)> {
    let mut out: Vec<(usize, Candidate)> = Vec::new();

    // Function tables: every analyzed fn gets an id.
    struct Entry<'a> {
        file: usize,
        f: &'a FnFacts,
    }
    let mut fns: Vec<Entry> = Vec::new();
    for (file, facts) in files {
        for f in facts {
            fns.push(Entry { file: *file, f });
        }
    }
    let mut by_free_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_method_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_typed_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, e) in fns.iter().enumerate() {
        by_free_name.entry(e.f.name.as_str()).or_default().push(i);
        if e.f.takes_self {
            by_method_name.entry(e.f.name.as_str()).or_default().push(i);
        }
        if let Some(t) = &e.f.self_ty {
            by_typed_name
                .entry((t.clone(), e.f.name.clone()))
                .or_default()
                .push(i);
        }
    }
    let resolve = |c: &Callee| -> Option<usize> {
        match c {
            Callee::Free(name) => match by_free_name.get(name.as_str()) {
                Some(v) if v.len() == 1 => Some(v[0]),
                _ => None,
            },
            Callee::Method { name, on_self } => {
                if let Some(t) = on_self {
                    if let Some(v) = by_typed_name.get(&(t.clone(), name.clone())) {
                        if v.len() == 1 {
                            return Some(v[0]);
                        }
                    }
                }
                match by_method_name.get(name.as_str()) {
                    Some(v) if v.len() == 1 => Some(v[0]),
                    _ => None,
                }
            }
        }
    };

    // Transitive lock acquisitions, to fixpoint over resolved edges.
    let mut all_acqs: Vec<BTreeSet<String>> =
        fns.iter().map(|e| e.f.direct_acqs.clone()).collect();
    loop {
        let mut changed = false;
        for (i, e) in fns.iter().enumerate() {
            for site in &e.f.calls {
                if let Some(j) = resolve(&site.callee) {
                    let extra: Vec<String> = all_acqs[j]
                        .iter()
                        .filter(|l| !all_acqs[i].contains(*l))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        all_acqs[i].extend(extra);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Lock-order edges: intra-function + held-across-call.
    // Each edge remembers every site that created it.
    let mut edges: BTreeMap<(String, String), Vec<(usize, u32, String)>> = BTreeMap::new();
    for e in fns.iter() {
        for (h, a, line) in &e.f.edges {
            edges.entry((h.clone(), a.clone())).or_default().push((
                e.file,
                *line,
                format!("`{a}` acquired on line {line} while `{h}` is held"),
            ));
        }
        for site in &e.f.calls {
            if site.held.is_empty() {
                continue;
            }
            let Some(j) = resolve(&site.callee) else { continue };
            let callee = &fns[j];
            for a in &all_acqs[j] {
                if site.held.contains(a) {
                    out.push((
                        e.file,
                        Candidate {
                            rule: RuleId::D6,
                            line: site.line,
                            message: format!(
                                "`{a}` is held across a call to `{}` (line {}), which acquires it again — self-deadlock on the non-reentrant shim locks",
                                callee.f.name, callee.f.line
                            ),
                        },
                    ));
                } else {
                    for h in &site.held {
                        edges.entry((h.clone(), a.clone())).or_default().push((
                            e.file,
                            site.line,
                            format!(
                                "`{a}` acquired via call to `{}` while `{h}` is held",
                                callee.f.name
                            ),
                        ));
                    }
                }
            }
        }
        // Local candidates pass straight through.
        for c in &e.f.local {
            out.push((e.file, c.clone()));
        }
    }

    // Cycle detection: an edge is a violation iff its target can reach
    // its source (i.e. it participates in a cycle).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (h, a) in edges.keys() {
        adj.entry(h.as_str()).or_default().insert(a.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((h, a), sites) in &edges {
        if reaches(a, h) {
            for (file, line, what) in sites {
                out.push((
                    *file,
                    Candidate {
                        rule: RuleId::D6,
                        line: *line,
                        message: format!(
                            "lock-order cycle: {what}, but elsewhere `{h}` is acquired while `{a}` is held — replay-visible deadlock risk"
                        ),
                    },
                ));
            }
        }
    }

    // D5c: workload RNG flowing into fault/backoff code.
    for e in fns.iter() {
        if e.f.domain != Domain::Workload {
            continue;
        }
        for site in &e.f.calls {
            if !site.rng_arg {
                continue;
            }
            let target_domain = match resolve(&site.callee) {
                Some(j) => fns[j].f.domain,
                None => match &site.callee {
                    // `policy.backoff(…)` resolves by its reserved name.
                    Callee::Method { name, .. } if name == "backoff" => Domain::Backoff,
                    _ => Domain::Other,
                },
            };
            if matches!(target_domain, Domain::Fault | Domain::Backoff) {
                out.push((
                    e.file,
                    Candidate {
                        rule: RuleId::D5,
                        line: site.line,
                        message: format!(
                            "workload RNG stream passed into {} code in `{}` — fault/backoff draws must come from their own forked stream or workload replay shifts when faults change",
                            if target_domain == Domain::Fault { "fault" } else { "backoff" },
                            e.f.name
                        ),
                    },
                ));
            }
        }
    }

    out
}

/// Convenience used by `lint_source`/`lint_workspace`: run both phases.
pub(crate) fn analyze(files: &[(usize, String, &ParsedFile)]) -> Vec<(usize, Candidate)> {
    // Workspace struct index: field lock-ness and field types by struct
    // name (name collisions merge conservatively; see DESIGN.md §5c).
    let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut field_types: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for (_, _, parsed) in files {
        for s in &parsed.structs {
            if s.in_test {
                continue;
            }
            let locks = lock_fields.entry(s.name.clone()).or_default();
            let types = field_types.entry(s.name.clone()).or_default();
            for (fname, ty) in &s.fields {
                if ty.mentions("RwLock") || ty.mentions("Mutex") {
                    locks.insert(fname.clone());
                }
                types.insert(fname.clone(), ty.idents.clone());
            }
        }
    }
    let per_file: Vec<(usize, Vec<FnFacts>)> = files
        .iter()
        .map(|(idx, path, parsed)| (*idx, extract_fns(path, parsed, &lock_fields, &field_types)))
        .collect();
    cross(&per_file)
}
