//! `scalewall-lint` — the workspace determinism lint.
//!
//! The whole reproduction rests on bit-identical replay (`tests/
//! determinism.rs`, the fault DSL, every golden experiment number). That
//! contract dies silently the moment a sim-facing code path consults wall
//! clock time, ambient randomness, or hash-iteration order — or, more
//! subtly, forks two RNG streams under one label, acquires locks in
//! inconsistent order, or panics mid-failover. This crate machine-checks
//! the contract on every build instead of rediscovering it per incident.
//!
//! # Rules
//!
//! * **D1 — no wall clock / OS threads.** `Instant`, `SystemTime`, and
//!   `std::thread` are forbidden in sim-facing code. Time comes from
//!   `SimTime`; concurrency from the event kernel. The sanctioned
//!   exception is `scalewall_bench::microbench`, the one place wall-clock
//!   measurement is the point.
//! * **D2 — no hash-ordered collections.** `HashMap`/`HashSet` are
//!   forbidden in sim-facing code, *mentions included*: the lint cannot
//!   prove a given map is never iterated, so the rule is enforced at the
//!   type level. Use `BTreeMap`/`BTreeSet` or carry a pragma explaining
//!   why the map can never leak ordering.
//! * **D3 — no literal-seeded RNGs.** `SimRng::new(42)` outside
//!   `crates/sim` breaks the fork discipline (seeds must flow from the
//!   experiment root so streams stay stable). Construct from config seeds
//!   or `fork()`.
//! * **D4 — no `unsafe`.** Outside `sim::sync` (the lock shims), `unsafe`
//!   has no business in a deterministic simulation.
//! * **D5 — RNG stream discipline** (semantic). Two `fork(…)` sites on
//!   one stream sharing a static label, re-forking a stream after drawing
//!   from it ("fork before fan-out"), and workload RNG values flowing
//!   into fault/backoff code are all replay hazards the fork convention
//!   exists to prevent.
//! * **D6 — lock-order analysis** (semantic). The acquisition graph of
//!   `sim::sync` locks, with held-sets propagated through a conservative
//!   call graph: same-lock nested acquires and cycle-participating
//!   acquisition sites are replay-visible deadlock risks.
//! * **D7 — panic-surface audit.** No `unwrap`/`expect`/`panic!`-family
//!   macros/integer-literal indexing on the experiment, kernel,
//!   zk-replica, and shard-manager hot paths ([`HOT_PATHS`]); each must
//!   become a typed error or carry a reasoned pragma.
//!
//! Detection runs on a parsed representation (`parser.rs`) with a
//! workspace symbol table and call graph (`semantic.rs`); anything the
//! tolerant parser cannot shape falls back to the v1 token scan, so
//! coverage never regresses (DESIGN.md §5c documents the conservatism and
//! its known false-negative edges).
//!
//! `#[cfg(test)]` items are exempt from all rules; integration tests,
//! examples, and the bench/lint tooling run under a reduced rule set (see
//! [`ruleset_for`]). Suppression requires a scoped pragma:
//!
//! ```text
//! // scalewall-lint: allow(D2) -- point lookups only, never iterated
//! ```
//!
//! A pragma on its own line covers the next code line; at the end of a
//! code line it covers that line. Malformed and *unused* pragmas are
//! themselves violations, so stale allows cannot accumulate.

pub mod json;
pub mod lexer;
pub mod parser;
mod semantic;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Tok, Token};
use parser::{Expr, ParsedFile, Stmt, Ty};

/// Crates whose `src/` is sim-facing (full rule set).
pub const SIM_FACING_CRATES: &[&str] =
    &["sim", "cluster", "cubrick", "shard-manager", "discovery", "zk"];

/// Hot-path files under the D7 panic-surface audit: the experiment
/// engine, the event kernel, the replicated coordination plane, the
/// shard manager, the admission controller, and the partial-result
/// merge — the code that runs during failover and overload, where a
/// panic kills the experiment mid-replay (or melts the serving plane
/// exactly when it is shedding load).
pub const HOT_PATHS: &[&str] = &[
    "crates/sim/src/event.rs",
    "crates/cluster/src/experiment.rs",
    "crates/zk/src/replica.rs",
    "crates/zk/src/log.rs",
    "crates/shard-manager/src/server.rs",
    "crates/cubrick/src/admission.rs",
    "crates/cubrick/src/coordinator.rs",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock time or OS threads in sim-facing code.
    D1,
    /// Hash-ordered collection in sim-facing code.
    D2,
    /// Literal-seeded RNG construction outside `crates/sim`.
    D3,
    /// `unsafe` outside `sim::sync`.
    D4,
    /// RNG stream-discipline breach (duplicate fork label, fork after
    /// draw, workload→fault/backoff flow).
    D5,
    /// Lock-order hazard (nested same-lock acquire or cycle site).
    D6,
    /// Panic surface on a hot path (`unwrap`/`expect`/`panic!`/literal
    /// index).
    D7,
    /// Malformed or unused suppression pragma.
    Pragma,
}

impl RuleId {
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "D5" => Some(RuleId::D5),
            "D6" => Some(RuleId::D6),
            "D7" => Some(RuleId::D7),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::Pragma => "pragma",
        };
        f.write_str(s)
    }
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
    pub d5: bool,
    pub d6: bool,
    pub d7: bool,
}

impl RuleSet {
    /// Full sim-facing tier (D7 only on [`HOT_PATHS`]).
    pub const SIM: RuleSet =
        RuleSet { d1: true, d2: true, d3: true, d4: true, d5: true, d6: true, d7: false };
    /// `crates/sim` itself: RNG construction is its job (no D3).
    pub const SIM_RNG_HOME: RuleSet =
        RuleSet { d1: true, d2: true, d3: false, d4: true, d5: true, d6: true, d7: false };
    /// Bench tier: no wall clock outside the sanctioned runner, but hash
    /// maps and local seeds are fine (bench output sorts explicitly).
    pub const BENCH: RuleSet =
        RuleSet { d1: true, d2: false, d3: false, d4: true, d5: false, d6: false, d7: false };
    /// Integration tests, examples, glue, tooling: only `unsafe` is policed.
    pub const PLAIN: RuleSet =
        RuleSet { d1: false, d2: false, d3: false, d4: true, d5: false, d6: false, d7: false };

    fn enables(&self, rule: RuleId) -> bool {
        match rule {
            RuleId::D1 => self.d1,
            RuleId::D2 => self.d2,
            RuleId::D3 => self.d3,
            RuleId::D4 => self.d4,
            RuleId::D5 => self.d5,
            RuleId::D6 => self.d6,
            RuleId::D7 => self.d7,
            RuleId::Pragma => true,
        }
    }
}

/// One unsuppressed rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: RuleId,
    pub line: u32,
    pub message: String,
}

/// One suppression pragma found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaUse {
    pub line: u32,
    pub rules: Vec<RuleId>,
    pub reason: String,
    /// How many violations this pragma silenced.
    pub suppressed: usize,
}

/// Lint results for one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    pub path: String,
    pub violations: Vec<Violation>,
    pub pragmas: Vec<PragmaUse>,
}

/// Lint results for a whole workspace scan.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    pub files: Vec<FileReport>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    pub fn violation_count(&self) -> usize {
        self.files.iter().map(|f| f.violations.len()).sum()
    }

    pub fn suppressed_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.pragmas)
            .map(|p| p.suppressed)
            .sum()
    }

    /// Every pragma in the workspace, as `(path, pragma)` pairs — the
    /// allow inventory the self-test prints.
    pub fn pragma_inventory(&self) -> Vec<(&str, &PragmaUse)> {
        self.files
            .iter()
            .flat_map(|f| f.pragmas.iter().map(move |p| (f.path.as_str(), p)))
            .collect()
    }
}

/// Rule set for a workspace-relative path, or `None` to skip the file
/// entirely (lint fixtures carry seeded violations on purpose).
pub fn ruleset_for(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("crates/lint/fixtures/") {
        return None;
    }
    // Sanctioned files first: most-specific match wins.
    if rel == "crates/sim/src/sync.rs" {
        // The lock shims may need `unsafe` (they are the one sanctioned
        // home for it) but everything else still applies.
        return Some(RuleSet { d4: false, ..RuleSet::SIM_RNG_HOME });
    }
    if rel == "crates/bench/src/microbench.rs" {
        // The sanctioned wall-clock runner.
        return Some(RuleSet::PLAIN);
    }
    let mut base = None;
    for c in SIM_FACING_CRATES {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            base = Some(if *c == "sim" { RuleSet::SIM_RNG_HOME } else { RuleSet::SIM });
            break;
        }
    }
    let mut rules = match base {
        Some(r) => r,
        None if rel.starts_with("crates/bench/src/") => RuleSet::BENCH,
        // Everything else that is Rust: crate tests/, workspace tests/,
        // examples/, root src/, the lint itself.
        None => RuleSet::PLAIN,
    };
    if HOT_PATHS.contains(&rel.as_str()) {
        rules.d7 = true;
    }
    Some(rules)
}

// --------------------------------------------------------------- pragmas

const PRAGMA_MARKER: &str = "scalewall-lint:";

struct ParsedPragma {
    line: u32,
    rules: Vec<RuleId>,
    reason: String,
    error: Option<String>,
}

/// Doc comments (`///`, `//!`, `/** */`, `/*! */`) never carry pragmas:
/// they are documentation, and quoting the pragma syntax in them — as
/// this crate's own module docs do — must not create a live suppression.
/// (`////…` and `/***…` are plain comments per the Rust reference, as is
/// the empty `/**/`.)
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && text.len() > 4 && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

/// Parse `// scalewall-lint: allow(D1, D2) -- reason` from a comment.
/// `line` is the line the comment *starts* on; a pragma further down a
/// multi-line block comment is attributed to its own physical line.
fn parse_pragma(text: &str, line: u32) -> Option<ParsedPragma> {
    if is_doc_comment(text) {
        return None;
    }
    let at = text.find(PRAGMA_MARKER)?;
    let line = line + text[..at].matches('\n').count() as u32;
    let rest = text[at + PRAGMA_MARKER.len()..].trim();
    // Inside a block comment the pragma's scope ends with its line.
    let rest = rest.lines().next().unwrap_or("").trim_end_matches("*/").trim();
    let fail = |msg: &str| {
        Some(ParsedPragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            error: Some(msg.to_string()),
        })
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        return fail("expected `allow(<rule>,…) -- <reason>` after `scalewall-lint:`");
    };
    let Some(close) = args.find(')') else {
        return fail("unclosed `allow(`");
    };
    let mut rules = Vec::new();
    for part in args[..close].split(',') {
        match RuleId::parse(part) {
            Some(r) => rules.push(r),
            None => return fail(&format!("unknown rule {:?} (use D1–D7)", part.trim())),
        }
    }
    if rules.is_empty() {
        return fail("empty rule list in `allow()`");
    }
    let tail = args[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return fail("missing `-- <reason>` after `allow(...)`");
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return fail("empty reason after `--`");
    }
    Some(ParsedPragma {
        line,
        rules,
        reason: reason.to_string(),
        error: None,
    })
}

// ---------------------------------------------------------- rule engine

#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) rule: RuleId,
    pub(crate) line: u32,
    pub(crate) message: String,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn push_candidate(out: &mut Vec<Candidate>, rule: RuleId, line: u32, message: String) {
    // Dedupe per (rule, line): `std::thread::spawn` should report once.
    if !out.iter().any(|c| c.rule == rule && c.line == line) {
        out.push(Candidate { rule, line, message });
    }
}

fn check_ty(out: &mut Vec<Candidate>, ty: &Ty) {
    for i in &ty.idents {
        match i.as_str() {
            "Instant" | "SystemTime" => push_candidate(
                out,
                RuleId::D1,
                ty.line,
                format!("`{i}` is wall-clock time — use `SimTime` (sim-facing code must not observe the host clock)"),
            ),
            "HashMap" | "HashSet" => push_candidate(
                out,
                RuleId::D2,
                ty.line,
                format!("`{i}` iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted collect"),
            ),
            _ => {}
        }
    }
}

/// AST-level rule scan over one parsed file (tiering and suppression are
/// applied later by the caller).
fn scan_parsed(parsed: &ParsedFile) -> Vec<Candidate> {
    let mut out = Vec::new();
    // Fields declared as fixed-size arrays (`[T; N]`) in this file: a
    // literal index into one is bounded by the type, not by runtime
    // emptiness, so the D7 "assume non-empty" rule skips them (the
    // kernel's `occupied[0]` occupancy-bitmask idiom). Known
    // false-negative edge: a literal ≥ N still panics; the lint does not
    // evaluate const expressions.
    let array_fields: std::collections::BTreeSet<&str> = parsed
        .structs
        .iter()
        .flat_map(|s| s.fields.iter())
        .filter(|(_, ty)| ty.text.trim_start().starts_with('['))
        .map(|(name, _)| name.as_str())
        .collect();
    for (line, in_test) in &parsed.item_unsafe {
        if !in_test {
            push_candidate(
                &mut out,
                RuleId::D4,
                *line,
                "`unsafe` outside `sim::sync` — a deterministic simulation has no business here"
                    .to_string(),
            );
        }
    }
    for s in &parsed.structs {
        if s.in_test {
            continue;
        }
        for (_, ty) in &s.fields {
            check_ty(&mut out, ty);
        }
    }
    for f in &parsed.fns {
        if f.in_test {
            continue;
        }
        for p in &f.params {
            check_ty(&mut out, &p.ty);
        }
        if let Some(ret) = &f.ret {
            check_ty(&mut out, ret);
        }
        let Some(body) = &f.body else { continue };
        parser::visit_stmts(body, &mut |s| {
            if let Stmt::Let { ty: Some(ty), .. } = s {
                check_ty(&mut out, ty);
            }
        });
        parser::walk_block(body, &mut |e| match e {
            Expr::Path(segs, line) => {
                for seg in segs {
                    match seg.as_str() {
                        "Instant" | "SystemTime" => push_candidate(
                            &mut out,
                            RuleId::D1,
                            *line,
                            format!("`{seg}` is wall-clock time — use `SimTime` (sim-facing code must not observe the host clock)"),
                        ),
                        "HashMap" | "HashSet" => push_candidate(
                            &mut out,
                            RuleId::D2,
                            *line,
                            format!("`{seg}` iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted collect"),
                        ),
                        _ => {}
                    }
                }
                let thread_spawn = segs.windows(2).any(|w| w[0] == "thread" && w[1] == "spawn");
                let std_thread = segs.windows(2).any(|w| w[0] == "std" && w[1] == "thread");
                if thread_spawn || std_thread {
                    push_candidate(
                        &mut out,
                        RuleId::D1,
                        *line,
                        "`std::thread` — sim-facing code runs on the deterministic event kernel, not OS threads".to_string(),
                    );
                }
            }
            Expr::Call { callee, args, line } => {
                if let Expr::Path(segs, _) = callee.as_ref() {
                    if segs.len() >= 2
                        && segs[segs.len() - 1] == "new"
                        && segs[segs.len() - 2].ends_with("Rng")
                        && args.len() == 1
                        && matches!(args[0], Expr::LitInt(..))
                    {
                        push_candidate(
                            &mut out,
                            RuleId::D3,
                            *line,
                            format!("literal-seeded `{}::new(…)` — seeds must flow from the experiment root via `fork()` (scalewall_sim::rng discipline)", segs[segs.len() - 2]),
                        );
                    }
                }
            }
            Expr::Method { name, line, .. } if name == "unwrap" || name == "expect" => {
                push_candidate(
                    &mut out,
                    RuleId::D7,
                    *line,
                    format!("`.{name}(…)` on a hot path — failover code must degrade through a typed error, not panic mid-replay"),
                );
            }
            Expr::Macro { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                push_candidate(
                    &mut out,
                    RuleId::D7,
                    *line,
                    format!("`{name}!` on a hot path — failover code must degrade through a typed error, not panic mid-replay"),
                );
            }
            Expr::Index { recv, index, line } => {
                let on_array_field = matches!(
                    recv.as_ref(),
                    Expr::Field { name, .. } if array_fields.contains(name.as_str())
                );
                if matches!(index.as_ref(), Expr::LitInt(..)) && !on_array_field {
                    push_candidate(
                        &mut out,
                        RuleId::D7,
                        *line,
                        "integer-literal index on a hot path assumes the collection is non-empty — use `.get(…)`/`.first()` and degrade".to_string(),
                    );
                }
            }
            Expr::Unsafe { line, .. } => {
                push_candidate(
                    &mut out,
                    RuleId::D4,
                    *line,
                    "`unsafe` outside `sim::sync` — a deterministic simulation has no business here".to_string(),
                );
            }
            _ => {}
        });
    }
    // Fallback token scan over everything the parser left opaque.
    for span in &parsed.opaque {
        if span.in_test {
            continue;
        }
        scan_tokens(&parsed.tokens[span.start..span.end], &mut out);
    }
    out
}

/// The v1 token-level scan, run over opaque spans (macro arguments,
/// `use`/`const` items, patterns, recovery stretches) so the parser's
/// tolerance never loses detections.
fn scan_tokens(code: &[Token], out: &mut Vec<Candidate>) {
    let punct_at = |i: usize, c: char| matches!(code.get(i), Some(t) if t.tok == Tok::Punct(c));
    let ident_at = |i: usize| match code.get(i) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    };
    for (i, t) in code.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        match word.as_str() {
            "Instant" | "SystemTime" => push_candidate(
                out,
                RuleId::D1,
                t.line,
                format!("`{word}` is wall-clock time — use `SimTime` (sim-facing code must not observe the host clock)"),
            ),
            "thread"
                if punct_at(i + 1, ':') && punct_at(i + 2, ':') && ident_at(i + 3) == Some("spawn") =>
            {
                push_candidate(
                    out,
                    RuleId::D1,
                    t.line,
                    "`thread::spawn` — sim-facing code runs on the deterministic event kernel, not OS threads".to_string(),
                )
            }
            "std" if punct_at(i + 1, ':') && punct_at(i + 2, ':') && ident_at(i + 3) == Some("thread") => {
                push_candidate(
                    out,
                    RuleId::D1,
                    t.line,
                    "`std::thread` — sim-facing code runs on the deterministic event kernel, not OS threads".to_string(),
                )
            }
            "HashMap" | "HashSet" => push_candidate(
                out,
                RuleId::D2,
                t.line,
                format!("`{word}` iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted collect"),
            ),
            "unsafe" => push_candidate(
                out,
                RuleId::D4,
                t.line,
                "`unsafe` outside `sim::sync` — a deterministic simulation has no business here".to_string(),
            ),
            "unwrap" | "expect" if i > 0 && punct_at(i - 1, '.') && punct_at(i + 1, '(') => {
                push_candidate(
                    out,
                    RuleId::D7,
                    t.line,
                    format!("`.{word}(…)` on a hot path — failover code must degrade through a typed error, not panic mid-replay"),
                )
            }
            w if PANIC_MACROS.contains(&w) && punct_at(i + 1, '!') => push_candidate(
                out,
                RuleId::D7,
                t.line,
                format!("`{w}!` on a hot path — failover code must degrade through a typed error, not panic mid-replay"),
            ),
            w if w.ends_with("Rng")
                && punct_at(i + 1, ':')
                && punct_at(i + 2, ':')
                && ident_at(i + 3) == Some("new")
                && punct_at(i + 4, '(')
                && matches!(code.get(i + 5), Some(Token { tok: Tok::Int(_), .. }))
                && punct_at(i + 6, ')') =>
            {
                push_candidate(
                    out,
                    RuleId::D3,
                    t.line,
                    format!("literal-seeded `{w}::new(…)` — seeds must flow from the experiment root via `fork()` (scalewall_sim::rng discipline)"),
                )
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------- two-phase analysis

struct AnalyzedFile {
    path: String,
    rules: RuleSet,
    parsed: ParsedFile,
    candidates: Vec<Candidate>,
    /// Pragma scopes: (governed line, rules, index into `pragmas`).
    scopes: Vec<(u32, Vec<RuleId>, usize)>,
    pragmas: Vec<PragmaUse>,
    pragma_errors: Vec<Violation>,
}

/// Two-phase lint driver: add every file, then [`Analysis::finish`] runs
/// the cross-file semantic passes (D5 flow, D6 propagation) and resolves
/// suppression.
#[derive(Default)]
pub struct Analysis {
    files: Vec<AnalyzedFile>,
}

impl Analysis {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_source(&mut self, path: &str, src: &str, rules: RuleSet) {
        let all_tokens = lex(src);
        let parsed = parser::parse(src);
        let candidates = scan_parsed(&parsed);

        // Lines that carry at least one code token, for pragma scoping.
        let code_lines: Vec<u32> = {
            let mut v: Vec<u32> = parsed.tokens.iter().map(|t| t.line).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut scopes = Vec::new();
        let mut pragmas = Vec::new();
        let mut pragma_errors = Vec::new();
        for t in &all_tokens {
            let Tok::Comment(text) = &t.tok else { continue };
            let Some(p) = parse_pragma(text, t.line) else { continue };
            if let Some(err) = p.error {
                pragma_errors.push(Violation {
                    rule: RuleId::Pragma,
                    line: p.line,
                    message: format!("malformed pragma: {err}"),
                });
                continue;
            }
            let target = if code_lines.binary_search(&p.line).is_ok() {
                p.line
            } else {
                match code_lines.iter().find(|&&l| l > p.line) {
                    Some(&l) => l,
                    None => p.line, // pragma at EOF governs nothing; reported unused
                }
            };
            scopes.push((target, p.rules.clone(), pragmas.len()));
            pragmas.push(PragmaUse {
                line: p.line,
                rules: p.rules,
                reason: p.reason,
                suppressed: 0,
            });
        }

        self.files.push(AnalyzedFile {
            path: path.to_string(),
            rules,
            parsed,
            candidates,
            scopes,
            pragmas,
            pragma_errors,
        });
    }

    pub fn finish(mut self) -> Vec<FileReport> {
        // Cross-file semantic passes (D5 domain flow, D6 call-graph
        // propagation) over every file at once.
        let inputs: Vec<(usize, String, &ParsedFile)> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.path.clone(), &f.parsed))
            .collect();
        let cross = semantic::analyze(&inputs);
        drop(inputs);
        for (idx, c) in cross {
            let file = &mut self.files[idx];
            if !file.candidates.iter().any(|e| e.rule == c.rule && e.line == c.line) {
                file.candidates.push(c);
            }
        }

        let mut reports = Vec::new();
        for mut file in self.files {
            let mut violations = std::mem::take(&mut file.pragma_errors);
            for c in &file.candidates {
                if !file.rules.enables(c.rule) {
                    continue;
                }
                let suppressor = file
                    .scopes
                    .iter()
                    .find(|(line, rs, _)| *line == c.line && rs.contains(&c.rule));
                match suppressor {
                    Some(&(_, _, idx)) => file.pragmas[idx].suppressed += 1,
                    None => violations.push(Violation {
                        rule: c.rule,
                        line: c.line,
                        message: c.message.clone(),
                    }),
                }
            }
            // A pragma that silenced nothing is stale — make it impossible
            // for dead allows to accumulate.
            for p in &file.pragmas {
                if p.suppressed == 0 {
                    violations.push(Violation {
                        rule: RuleId::Pragma,
                        line: p.line,
                        message: "unused pragma: it suppresses nothing on its scope line"
                            .to_string(),
                    });
                }
            }
            violations.sort_by_key(|v| (v.line, v.rule));
            reports.push(FileReport {
                path: file.path,
                violations,
                pragmas: file.pragmas,
            });
        }
        reports
    }
}

// ------------------------------------------------------------ per-file

/// Lint one file's source under a rule set. Cross-file D5/D6 reasoning is
/// restricted to what the single file can prove about itself.
pub fn lint_source(src: &str, rules: RuleSet) -> (Vec<Violation>, Vec<PragmaUse>) {
    let mut a = Analysis::new();
    a.add_source("<memory>.rs", src, rules);
    let mut reports = a.finish();
    let r = reports.pop().unwrap_or_default();
    (r.violations, r.pragmas)
}

/// Lint one file from disk. `rel` is the workspace-relative path used for
/// tier classification and reporting.
pub fn lint_file(root: &Path, rel: &str) -> std::io::Result<Option<FileReport>> {
    let Some(rules) = ruleset_for(rel) else {
        return Ok(None);
    };
    let src = std::fs::read_to_string(root.join(rel))?;
    let mut a = Analysis::new();
    a.add_source(rel, &src, rules);
    Ok(a.finish().pop())
}

/// Collect workspace `.rs` files (sorted, deterministic).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`: every file feeds one
/// symbol table, so D6 held-sets propagate across crate boundaries.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    let mut analysis = Analysis::new();
    let mut files_scanned = 0usize;
    for rel in files {
        let Some(rules) = ruleset_for(&rel) else { continue };
        let src = std::fs::read_to_string(root.join(&rel))?;
        analysis.add_source(&rel, &src, rules);
        files_scanned += 1;
    }
    let mut report = WorkspaceReport { files: Vec::new(), files_scanned };
    for file_report in analysis.finish() {
        if !file_report.violations.is_empty() || !file_report.pragmas.is_empty() {
            report.files.push(file_report);
        }
    }
    Ok(report)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str, rules: RuleSet) -> Vec<RuleId> {
        lint_source(src, rules).0.into_iter().map(|v| v.rule).collect()
    }

    /// The SIM tier with the D7 hot-path audit switched on, as
    /// `ruleset_for` produces for [`HOT_PATHS`].
    const HOT: RuleSet = RuleSet { d7: true, ..RuleSet::SIM };

    #[test]
    fn clean_source_is_clean() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d1_flags_instant_and_threads() {
        assert_eq!(violations("use std::time::Instant;", RuleSet::SIM), [RuleId::D1]);
        assert_eq!(violations("fn f() { let _ = SystemTime::now(); }", RuleSet::SIM), [RuleId::D1]);
        assert_eq!(
            violations("fn f() { std::thread::spawn(|| {}); }", RuleSet::SIM),
            [RuleId::D1]
        );
    }

    #[test]
    fn d1_flags_wall_clock_types_in_signatures() {
        assert_eq!(
            violations("fn f(t: Instant) {}", RuleSet::SIM),
            [RuleId::D1]
        );
        assert_eq!(
            violations("fn now() -> SystemTime { loop {} }", RuleSet::SIM),
            [RuleId::D1]
        );
        assert_eq!(
            violations("struct S { started: Instant }", RuleSet::SIM),
            [RuleId::D1]
        );
    }

    #[test]
    fn d2_flags_hash_collections() {
        assert_eq!(
            violations("use std::collections::HashMap;", RuleSet::SIM),
            [RuleId::D2]
        );
        // …but not in the bench tier.
        assert!(violations("use std::collections::HashMap;", RuleSet::BENCH).is_empty());
    }

    #[test]
    fn d2_flags_types_inside_macro_args() {
        // Macro arguments are opaque to the parser; the fallback token
        // scan must still see them.
        let src = "fn f() { foo!(HashMap::new()); }";
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D2]);
    }

    #[test]
    fn d3_flags_literal_seeds_only() {
        assert_eq!(violations("fn f() { let r = SimRng::new(42); }", RuleSet::SIM), [RuleId::D3]);
        assert!(violations("fn f(s: u64) { let r = SimRng::new(s); }", RuleSet::SIM).is_empty());
        assert!(violations("fn f() { let r = SimRng::new(cfg.seed); }", RuleSet::SIM).is_empty());
        // No D3 inside crates/sim's own rule set.
        assert!(violations("fn f() { let r = SimRng::new(42); }", RuleSet::SIM_RNG_HOME).is_empty());
    }

    #[test]
    fn d4_flags_unsafe() {
        assert_eq!(
            violations("fn f() { unsafe { std::hint::unreachable_unchecked() } }", RuleSet::PLAIN),
            [RuleId::D4]
        );
        assert_eq!(violations("unsafe fn f() {}", RuleSet::PLAIN), [RuleId::D4]);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                use std::time::Instant;
                fn t() { let _ = std::thread::spawn(|| {}); let _ = SimRng::new(1); }
            }
        "#;
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn cfg_test_fn_with_stacked_attrs_is_exempt() {
        let src = r#"
            #[cfg(test)]
            #[allow(dead_code)]
            fn helper() { let m = HashMap::new(); }
            fn real() { let m = HashMap::new(); }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D2]);
    }

    #[test]
    fn cfg_test_use_statement_is_exempt() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn cfg_any_including_test_is_exempt() {
        let src = "#[cfg(any(test, fuzzing))]\nfn f() { let m = HashMap::new(); }\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn non_test_cfg_is_not_exempt() {
        let src = "#[cfg(target_os = \"linux\")]\nfn f() { let m = HashMap::new(); }\n";
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D2]);
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = r###"
            // HashMap Instant unsafe SimRng::new(42)
            /* HashMap /* Instant */ unsafe */
            fn f() { let s = "HashMap Instant unsafe"; let r = r#"HashMap"#; }
        "###;
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    // ------------------------------------------------------------ D5

    #[test]
    fn d5_flags_duplicate_fork_labels() {
        let src = r#"
            fn f(rng: &mut SimRng) {
                let a = rng.fork(7);
                let b = rng.fork(7);
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D5]);
        // Distinct labels are the sanctioned pattern.
        let clean = "fn f(rng: &mut SimRng) { let a = rng.fork(1); let b = rng.fork(2); }";
        assert!(violations(clean, RuleSet::SIM).is_empty());
        // Dynamic labels (loop indices) are fine — hierarchy, not reuse.
        let dynamic = "fn f(rng: &mut SimRng, n: u64) { for i in 0..n { let c = rng.fork(i); } }";
        assert!(violations(dynamic, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d5_flags_screaming_const_label_reuse() {
        let src = r#"
            fn f(rng: &mut SimRng) {
                let a = rng.fork(TOPOLOGY_STREAM);
                let b = rng.fork(TOPOLOGY_STREAM);
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D5]);
    }

    #[test]
    fn d5_flags_fork_after_draw() {
        let src = r#"
            fn f(rng: &mut SimRng) {
                let mut child = rng.fork(1);
                let x = child.below(10);
                let grandchild = child.fork(2);
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D5]);
        // Fork-then-fork (hierarchical fan-out before any draw) is the
        // sanctioned idiom.
        let clean = r#"
            fn f(rng: &mut SimRng) {
                let mut topo = rng.fork(1);
                let a = topo.fork(10);
                let b = topo.fork(11);
            }
        "#;
        assert!(violations(clean, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d5_flags_workload_rng_into_fault_code() {
        let src = r#"
            mod workload {
                fn issue_queries(rng: &mut SimRng) {
                    super::fault::inject(rng);
                }
            }
            mod fault {
                pub fn inject(r: &mut SimRng) {}
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D5]);
        // A fault module using its own forked stream is fine.
        let clean = r#"
            mod workload {
                fn issue_queries(rng: &mut SimRng) { let x = rng.unit(); }
            }
            mod fault {
                pub fn inject(r: &mut SimRng) { let y = r.unit(); }
            }
        "#;
        assert!(violations(clean, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d5_flags_workload_rng_into_backoff() {
        let src = r#"
            mod workload {
                fn drive(policy: &RetryPolicy, rng: &mut SimRng) {
                    let wait = policy.backoff(3, rng);
                }
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D5]);
    }

    // ------------------------------------------------------------ D6

    #[test]
    fn d6_flags_nested_same_lock_acquire() {
        let src = r#"
            struct S { catalog: RwLock<u32> }
            impl S {
                fn f(&self) {
                    let g = self.catalog.write();
                    let h = self.catalog.read();
                }
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D6]);
        // Sequential (non-nested) acquisition is fine: the first guard
        // dies at the end of its statement or on drop().
        let clean = r#"
            struct S { catalog: RwLock<u32> }
            impl S {
                fn f(&self) {
                    let a = self.catalog.write();
                    drop(a);
                    let b = self.catalog.read();
                }
            }
        "#;
        assert!(violations(clean, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d6_flags_lock_order_cycle_across_functions() {
        let src = r#"
            struct S { a: RwLock<u32>, b: RwLock<u32> }
            impl S {
                fn ab(&self) {
                    let g = self.a.write();
                    let h = self.b.read();
                }
                fn ba(&self) {
                    let g = self.b.write();
                    let h = self.a.read();
                }
            }
        "#;
        let v = lint_source(src, RuleSet::SIM).0;
        assert!(v.iter().all(|v| v.rule == RuleId::D6), "{v:?}");
        assert_eq!(v.len(), 2, "both cycle sites report: {v:?}");
        // Consistent ordering has no cycle.
        let clean = r#"
            struct S { a: RwLock<u32>, b: RwLock<u32> }
            impl S {
                fn ab(&self) {
                    let g = self.a.write();
                    let h = self.b.read();
                }
                fn ab2(&self) {
                    let g = self.a.read();
                    let h = self.b.write();
                }
            }
        "#;
        assert!(violations(clean, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d6_propagates_held_sets_through_calls() {
        // `outer` holds `a` while calling `inner`, which acquires `a`
        // again: a self-deadlock only visible through the call graph.
        let src = r#"
            struct S { a: Mutex<u32> }
            impl S {
                fn outer(&self) {
                    let g = self.a.lock();
                    self.inner();
                }
                fn inner(&self) {
                    let h = self.a.lock();
                }
            }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D6]);
        // Dropping the guard before the call clears it.
        let clean = r#"
            struct S { a: Mutex<u32> }
            impl S {
                fn outer(&self) {
                    let g = self.a.lock();
                    drop(g);
                    self.inner();
                }
                fn inner(&self) {
                    let h = self.a.lock();
                }
            }
        "#;
        assert!(violations(clean, RuleSet::SIM).is_empty());
    }

    // ------------------------------------------------------------ D7

    #[test]
    fn d7_flags_panic_surface_on_hot_paths_only() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a > b { panic!("impossible"); }
                a
            }
            fn g(v: &[u32]) -> u32 { v[0] }
        "#;
        let v = lint_source(src, HOT).0;
        assert_eq!(v.iter().map(|v| v.rule).collect::<Vec<_>>(), [RuleId::D7; 4], "{v:?}");
        // The same source is fine off the hot paths…
        assert!(violations(src, RuleSet::SIM).is_empty());
        // …and in test code on them.
        let test_src = "#[cfg(test)]\nmod t { fn f(x: Option<u32>) { x.unwrap(); } }";
        assert!(violations(test_src, HOT).is_empty());
    }

    #[test]
    fn d7_allows_literal_index_into_fixed_size_array_fields() {
        // `[T; N]` fields are bounded by the type (the kernel's
        // `occupied[0]` bitmask idiom); Vec/slice fields still flag.
        let src = r#"
struct W { occupied: [u64; 4], refs: Vec<u32> }
impl W {
    fn f(&self) -> u64 { self.occupied[0] }
    fn g(&self) -> u32 { self.refs[0] }
}
"#;
        let v = lint_source(src, HOT).0;
        assert_eq!(
            v.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
            [(RuleId::D7, 5)],
            "{v:?}"
        );
    }

    #[test]
    fn d7_ignores_variable_indexing() {
        // Variable indices are how the kernel's wheel works; only the
        // "assume non-empty" literal-index pattern is flagged.
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert!(violations(src, HOT).is_empty());
    }

    // ------------------------------------------------------- pragmas

    #[test]
    fn pragma_suppresses_same_line() {
        let src = "use std::collections::HashMap; // scalewall-lint: allow(D2) -- fixture\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].suppressed, 1);
        assert_eq!(p[0].reason, "fixture");
    }

    #[test]
    fn pragma_on_own_line_covers_next_code_line() {
        let src = "// scalewall-lint: allow(D1) -- sanctioned probe\n\nuse std::time::Instant;\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p[0].suppressed, 1);
    }

    #[test]
    fn pragma_does_not_leak_past_its_scope() {
        let src = "// scalewall-lint: allow(D2) -- first only\nlet a = HashMap::new();\nlet b = HashMap::new();\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn pragma_wrong_rule_does_not_suppress() {
        let src = "use std::collections::HashMap; // scalewall-lint: allow(D1) -- wrong rule\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        // The D2 fires AND the pragma is unused.
        assert_eq!(
            v.iter().map(|v| v.rule).collect::<Vec<_>>(),
            [RuleId::D2, RuleId::Pragma]
        );
    }

    #[test]
    fn pragma_deep_in_block_comment_gets_its_own_line() {
        // The pragma sits on physical line 3 of a block comment starting
        // on line 1; it must govern line 4 (the next code line), not line
        // 2. This was a live bug in the v1 comment-line attribution.
        let src = "/* preamble\n   more\n   scalewall-lint: allow(D2) -- block scoped */\nuse std::collections::HashMap;\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p[0].line, 3);
        assert_eq!(p[0].suppressed, 1);
    }

    #[test]
    fn malformed_pragma_is_a_violation() {
        for bad in [
            "// scalewall-lint: allow(D9) -- nope",
            "// scalewall-lint: allow(D2)",
            "// scalewall-lint: allow(D2) --   ",
            "// scalewall-lint: allow() -- empty",
            "// scalewall-lint: deny(D2) -- wrong verb",
        ] {
            let (v, _) = lint_source(bad, RuleSet::SIM);
            assert_eq!(v.len(), 1, "{bad}");
            assert_eq!(v[0].rule, RuleId::Pragma, "{bad}");
        }
    }

    #[test]
    fn unused_pragma_is_a_violation() {
        let src = "// scalewall-lint: allow(D2) -- stale\nlet x = 1;\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.iter().map(|v| v.rule).collect::<Vec<_>>(), [RuleId::Pragma]);
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        // Quoting the pragma syntax in documentation must create neither a
        // live suppression nor an unused-pragma violation.
        for src in [
            "//! // scalewall-lint: allow(D2) -- quoted in module docs\nlet x = 1;\n",
            "/// // scalewall-lint: allow(D2) -- quoted in item docs\nuse std::collections::HashMap;\n",
            "/** scalewall-lint: allow(D1) -- quoted in block docs */\nlet x = 1;\n",
        ] {
            let (v, p) = lint_source(src, RuleSet::PLAIN);
            assert!(v.is_empty(), "{src}: {v:?}");
            assert!(p.is_empty(), "{src}: {p:?}");
        }
        // …and a doc-comment "pragma" cannot suppress a real violation.
        let src = "/// scalewall-lint: allow(D2) -- docs only\nuse std::collections::HashMap;\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.iter().map(|v| v.rule).collect::<Vec<_>>(), [RuleId::D2]);
    }

    #[test]
    fn multi_rule_pragma() {
        let src = "// scalewall-lint: allow(D1, D2) -- both on next line\nuse std::time::Instant; use std::collections::HashMap;\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p[0].suppressed, 2);
    }

    #[test]
    fn tiering_matches_layout() {
        assert_eq!(ruleset_for("crates/cubrick/src/store.rs"), Some(RuleSet::SIM));
        assert_eq!(ruleset_for("crates/sim/src/rng.rs"), Some(RuleSet::SIM_RNG_HOME));
        assert_eq!(
            ruleset_for("crates/sim/src/sync.rs"),
            Some(RuleSet { d4: false, ..RuleSet::SIM_RNG_HOME })
        );
        assert_eq!(ruleset_for("crates/bench/src/microbench.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/bench/src/figures/fig4a.rs"), Some(RuleSet::BENCH));
        assert_eq!(ruleset_for("crates/cubrick/tests/props.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("tests/determinism.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/lint/src/lib.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/lint/fixtures/d1_wall_clock.rs"), None);
        // The D7 hot-path audit rides on top of each file's base tier.
        assert_eq!(
            ruleset_for("crates/sim/src/event.rs"),
            Some(RuleSet { d7: true, ..RuleSet::SIM_RNG_HOME })
        );
        assert_eq!(
            ruleset_for("crates/cluster/src/experiment.rs"),
            Some(RuleSet { d7: true, ..RuleSet::SIM })
        );
        assert_eq!(
            ruleset_for("crates/zk/src/replica.rs"),
            Some(RuleSet { d7: true, ..RuleSet::SIM })
        );
    }
}
