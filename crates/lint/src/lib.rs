//! `scalewall-lint` — the workspace determinism lint.
//!
//! The whole reproduction rests on bit-identical replay (`tests/
//! determinism.rs`, the fault DSL, every golden experiment number). That
//! contract dies silently the moment a sim-facing code path consults wall
//! clock time, ambient randomness, or hash-iteration order. This crate
//! machine-checks the contract on every build instead of rediscovering it
//! per incident.
//!
//! # Rules
//!
//! * **D1 — no wall clock / OS threads.** `Instant`, `SystemTime`, and
//!   `std::thread` are forbidden in sim-facing code. Time comes from
//!   `SimTime`; concurrency from the event kernel. The sanctioned
//!   exception is `scalewall_bench::microbench`, the one place wall-clock
//!   measurement is the point.
//! * **D2 — no hash-ordered collections.** `HashMap`/`HashSet` are
//!   forbidden in sim-facing code, *mentions included*: a lexer cannot
//!   prove a given map is never iterated, so the rule is enforced at the
//!   type level. Use `BTreeMap`/`BTreeSet` or carry a pragma explaining
//!   why the map can never leak ordering.
//! * **D3 — no literal-seeded RNGs.** `SimRng::new(42)` outside
//!   `crates/sim` breaks the fork discipline (seeds must flow from the
//!   experiment root so streams stay stable). Construct from config seeds
//!   or `fork()`.
//! * **D4 — no `unsafe`.** Outside `sim::sync` (the lock shims), `unsafe`
//!   has no business in a deterministic simulation.
//!
//! `#[cfg(test)]` items are exempt from all rules; integration tests,
//! examples, and the bench/lint tooling run under a reduced rule set (see
//! [`ruleset_for`]). Suppression requires a scoped pragma:
//!
//! ```text
//! // scalewall-lint: allow(D2) -- point lookups only, never iterated
//! ```
//!
//! A pragma on its own line covers the next code line; at the end of a
//! code line it covers that line. Malformed and *unused* pragmas are
//! themselves violations, so stale allows cannot accumulate.

pub mod lexer;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Tok, Token};

/// Crates whose `src/` is sim-facing (full rule set).
pub const SIM_FACING_CRATES: &[&str] =
    &["sim", "cluster", "cubrick", "shard-manager", "discovery", "zk"];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock time or OS threads in sim-facing code.
    D1,
    /// Hash-ordered collection in sim-facing code.
    D2,
    /// Literal-seeded RNG construction outside `crates/sim`.
    D3,
    /// `unsafe` outside `sim::sync`.
    D4,
    /// Malformed or unused suppression pragma.
    Pragma,
}

impl RuleId {
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::Pragma => "pragma",
        };
        f.write_str(s)
    }
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
}

impl RuleSet {
    /// Full sim-facing tier.
    pub const SIM: RuleSet = RuleSet { d1: true, d2: true, d3: true, d4: true };
    /// `crates/sim` itself: RNG construction is its job (no D3).
    pub const SIM_RNG_HOME: RuleSet = RuleSet { d1: true, d2: true, d3: false, d4: true };
    /// Bench tier: no wall clock outside the sanctioned runner, but hash
    /// maps and local seeds are fine (bench output sorts explicitly).
    pub const BENCH: RuleSet = RuleSet { d1: true, d2: false, d3: false, d4: true };
    /// Integration tests, examples, glue, tooling: only `unsafe` is policed.
    pub const PLAIN: RuleSet = RuleSet { d1: false, d2: false, d3: false, d4: true };

    fn enables(&self, rule: RuleId) -> bool {
        match rule {
            RuleId::D1 => self.d1,
            RuleId::D2 => self.d2,
            RuleId::D3 => self.d3,
            RuleId::D4 => self.d4,
            RuleId::Pragma => true,
        }
    }
}

/// One unsuppressed rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: RuleId,
    pub line: u32,
    pub message: String,
}

/// One suppression pragma found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaUse {
    pub line: u32,
    pub rules: Vec<RuleId>,
    pub reason: String,
    /// How many violations this pragma silenced.
    pub suppressed: usize,
}

/// Lint results for one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    pub path: String,
    pub violations: Vec<Violation>,
    pub pragmas: Vec<PragmaUse>,
}

/// Lint results for a whole workspace scan.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    pub files: Vec<FileReport>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    pub fn violation_count(&self) -> usize {
        self.files.iter().map(|f| f.violations.len()).sum()
    }

    pub fn suppressed_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.pragmas)
            .map(|p| p.suppressed)
            .sum()
    }

    /// Every pragma in the workspace, as `(path, pragma)` pairs — the
    /// allow inventory the self-test prints.
    pub fn pragma_inventory(&self) -> Vec<(&str, &PragmaUse)> {
        self.files
            .iter()
            .flat_map(|f| f.pragmas.iter().map(move |p| (f.path.as_str(), p)))
            .collect()
    }
}

/// Rule set for a workspace-relative path, or `None` to skip the file
/// entirely (lint fixtures carry seeded violations on purpose).
pub fn ruleset_for(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("crates/lint/fixtures/") {
        return None;
    }
    // Sanctioned files first: most-specific match wins.
    if rel == "crates/sim/src/sync.rs" {
        // The lock shims may need `unsafe` (they are the one sanctioned
        // home for it) but everything else still applies.
        return Some(RuleSet { d4: false, ..RuleSet::SIM_RNG_HOME });
    }
    if rel == "crates/bench/src/microbench.rs" {
        // The sanctioned wall-clock runner.
        return Some(RuleSet::PLAIN);
    }
    for c in SIM_FACING_CRATES {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            return Some(if *c == "sim" { RuleSet::SIM_RNG_HOME } else { RuleSet::SIM });
        }
    }
    if rel.starts_with("crates/bench/src/") {
        return Some(RuleSet::BENCH);
    }
    // Everything else that is Rust: crate tests/, workspace tests/,
    // examples/, root src/, the lint itself.
    Some(RuleSet::PLAIN)
}

// --------------------------------------------------------------- pragmas

const PRAGMA_MARKER: &str = "scalewall-lint:";

struct ParsedPragma {
    line: u32,
    rules: Vec<RuleId>,
    reason: String,
    error: Option<String>,
}

/// Doc comments (`///`, `//!`, `/** */`, `/*! */`) never carry pragmas:
/// they are documentation, and quoting the pragma syntax in them — as
/// this crate's own module docs do — must not create a live suppression.
/// (`////…` and `/***…` are plain comments per the Rust reference, as is
/// the empty `/**/`.)
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && text.len() > 4 && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

/// Parse `// scalewall-lint: allow(D1, D2) -- reason` from a comment.
fn parse_pragma(text: &str, line: u32) -> Option<ParsedPragma> {
    if is_doc_comment(text) {
        return None;
    }
    let at = text.find(PRAGMA_MARKER)?;
    let rest = text[at + PRAGMA_MARKER.len()..].trim();
    let fail = |msg: &str| {
        Some(ParsedPragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            error: Some(msg.to_string()),
        })
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        return fail("expected `allow(<rule>,…) -- <reason>` after `scalewall-lint:`");
    };
    let Some(close) = args.find(')') else {
        return fail("unclosed `allow(`");
    };
    let mut rules = Vec::new();
    for part in args[..close].split(',') {
        match RuleId::parse(part) {
            Some(r) => rules.push(r),
            None => return fail(&format!("unknown rule {:?} (use D1–D4)", part.trim())),
        }
    }
    if rules.is_empty() {
        return fail("empty rule list in `allow()`");
    }
    let tail = args[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return fail("missing `-- <reason>` after `allow(...)`");
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return fail("empty reason after `--`");
    }
    Some(ParsedPragma {
        line,
        rules,
        reason: reason.to_string(),
        error: None,
    })
}

// ----------------------------------------------------- cfg(test) regions

fn punct_at(code: &[&Token], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(t) if t.tok == Tok::Punct(c))
}

fn ident_at<'a>(code: &[&'a Token], i: usize) -> Option<&'a str> {
    match code.get(i) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

/// Index just past the bracket group opening at `open` (any of `(`/`[`/
/// `{`). A single depth counter suffices for well-formed Rust.
fn skip_group(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        match code[i].tok {
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']' | '}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Mark every code token inside a `#[cfg(test)]`-gated item (attribute
/// included) as test-only. Any `cfg(...)` whose argument list mentions the
/// bare ident `test` counts (`cfg(test)`, `cfg(any(test, fuzzing))`, …).
fn mark_test_regions(code: &[&Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !(punct_at(code, i, '#') && punct_at(code, i + 1, '[')) {
            i += 1;
            continue;
        }
        let attr_end = skip_group(code, i + 1); // one past the `]`
        let is_cfg_test = ident_at(code, i + 2) == Some("cfg")
            && code[i + 2..attr_end]
                .iter()
                .any(|t| t.tok == Tok::Ident("test".into()));
        if !is_cfg_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut m = attr_end;
        while punct_at(code, m, '#') && punct_at(code, m + 1, '[') {
            m = skip_group(code, m + 1);
        }
        // The item ends at the first top-level `;` or the close of the
        // first top-level `{…}` body.
        let mut end = code.len();
        let mut n = m;
        while n < code.len() {
            match code[n].tok {
                Tok::Punct(';') => {
                    end = n + 1;
                    break;
                }
                Tok::Punct('{') => {
                    end = skip_group(code, n);
                    break;
                }
                Tok::Punct('(' | '[') => n = skip_group(code, n),
                _ => n += 1,
            }
        }
        for flag in &mut in_test[i..end] {
            *flag = true;
        }
        i = end;
    }
    in_test
}

// ------------------------------------------------------------ rule scan

struct Candidate {
    rule: RuleId,
    line: u32,
    message: String,
}

/// Scan the code tokens for rule hits (ignoring suppression and tiering —
/// the caller filters).
fn scan_rules(code: &[&Token], in_test: &[bool]) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut push = |rule: RuleId, line: u32, message: String| {
        // Dedupe per (rule, line): `std::thread::spawn` should report once.
        if !out.iter().any(|c| c.rule == rule && c.line == line) {
            out.push(Candidate { rule, line, message });
        }
    };
    for (i, t) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let Tok::Ident(word) = &t.tok else { continue };
        match word.as_str() {
            "Instant" | "SystemTime" => push(
                RuleId::D1,
                t.line,
                format!("`{word}` is wall-clock time — use `SimTime` (sim-facing code must not observe the host clock)"),
            ),
            "thread"
                if punct_at(code, i + 1, ':')
                    && punct_at(code, i + 2, ':')
                    && ident_at(code, i + 3) == Some("spawn") =>
            {
                push(
                    RuleId::D1,
                    t.line,
                    "`thread::spawn` — sim-facing code runs on the deterministic event kernel, not OS threads".to_string(),
                )
            }
            "std"
                if punct_at(code, i + 1, ':')
                    && punct_at(code, i + 2, ':')
                    && ident_at(code, i + 3) == Some("thread") =>
            {
                push(
                    RuleId::D1,
                    t.line,
                    "`std::thread` — sim-facing code runs on the deterministic event kernel, not OS threads".to_string(),
                )
            }
            "HashMap" | "HashSet" => push(
                RuleId::D2,
                t.line,
                format!("`{word}` iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted collect"),
            ),
            "unsafe" => push(
                RuleId::D4,
                t.line,
                "`unsafe` outside `sim::sync` — a deterministic simulation has no business here".to_string(),
            ),
            w if w.ends_with("Rng")
                && punct_at(code, i + 1, ':')
                && punct_at(code, i + 2, ':')
                && ident_at(code, i + 3) == Some("new")
                && punct_at(code, i + 4, '(')
                && matches!(code.get(i + 5), Some(Token { tok: Tok::Int(_), .. }))
                && punct_at(code, i + 6, ')') =>
            {
                push(
                    RuleId::D3,
                    t.line,
                    format!("literal-seeded `{w}::new(…)` — seeds must flow from the experiment root via `fork()` (scalewall_sim::rng discipline)"),
                )
            }
            _ => {}
        }
    }
    out
}

// ------------------------------------------------------------ per-file

/// Lint one file's source under a rule set.
pub fn lint_source(src: &str, rules: RuleSet) -> (Vec<Violation>, Vec<PragmaUse>) {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.tok, Tok::Comment(_)))
        .collect();
    let in_test = mark_test_regions(&code);

    let mut violations: Vec<Violation> = Vec::new();
    let mut pragmas: Vec<PragmaUse> = Vec::new();

    // Lines that carry at least one code token, for pragma scoping.
    let code_lines: Vec<u32> = {
        let mut v: Vec<u32> = code.iter().map(|t| t.line).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    // Parse pragmas; each resolves to the line it governs.
    let mut scopes: Vec<(u32, Vec<RuleId>, usize)> = Vec::new(); // (line, rules, pragma idx)
    for t in &tokens {
        let Tok::Comment(text) = &t.tok else { continue };
        let Some(p) = parse_pragma(text, t.line) else { continue };
        if let Some(err) = p.error {
            violations.push(Violation {
                rule: RuleId::Pragma,
                line: p.line,
                message: format!("malformed pragma: {err}"),
            });
            continue;
        }
        let target = if code_lines.binary_search(&p.line).is_ok() {
            p.line
        } else {
            match code_lines.iter().find(|&&l| l > p.line) {
                Some(&l) => l,
                None => p.line, // pragma at EOF governs nothing; reported unused
            }
        };
        scopes.push((target, p.rules.clone(), pragmas.len()));
        pragmas.push(PragmaUse {
            line: p.line,
            rules: p.rules,
            reason: p.reason,
            suppressed: 0,
        });
    }

    for c in scan_rules(&code, &in_test) {
        if !rules.enables(c.rule) {
            continue;
        }
        let suppressor = scopes
            .iter()
            .find(|(line, rs, _)| *line == c.line && rs.contains(&c.rule));
        match suppressor {
            Some(&(_, _, idx)) => pragmas[idx].suppressed += 1,
            None => violations.push(Violation {
                rule: c.rule,
                line: c.line,
                message: c.message,
            }),
        }
    }

    // A pragma that silenced nothing is stale — make it impossible for
    // dead allows to accumulate.
    for p in &pragmas {
        if p.suppressed == 0 {
            violations.push(Violation {
                rule: RuleId::Pragma,
                line: p.line,
                message: "unused pragma: it suppresses nothing on its scope line".to_string(),
            });
        }
    }

    violations.sort_by_key(|v| (v.line, v.rule));
    (violations, pragmas)
}

/// Lint one file from disk. `rel` is the workspace-relative path used for
/// tier classification and reporting.
pub fn lint_file(root: &Path, rel: &str) -> std::io::Result<Option<FileReport>> {
    let Some(rules) = ruleset_for(rel) else {
        return Ok(None);
    };
    let src = std::fs::read_to_string(root.join(rel))?;
    let (violations, pragmas) = lint_source(&src, rules);
    Ok(Some(FileReport {
        path: rel.to_string(),
        violations,
        pragmas,
    }))
}

/// Collect workspace `.rs` files (sorted, deterministic).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    let mut report = WorkspaceReport::default();
    for rel in files {
        if let Some(file_report) = lint_file(root, &rel)? {
            report.files_scanned += 1;
            if !file_report.violations.is_empty() || !file_report.pragmas.is_empty() {
                report.files.push(file_report);
            }
        }
    }
    Ok(report)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str, rules: RuleSet) -> Vec<RuleId> {
        lint_source(src, rules).0.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_source_is_clean() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn d1_flags_instant_and_threads() {
        assert_eq!(violations("use std::time::Instant;", RuleSet::SIM), [RuleId::D1]);
        assert_eq!(violations("fn f() { let _ = SystemTime::now(); }", RuleSet::SIM), [RuleId::D1]);
        assert_eq!(
            violations("fn f() { std::thread::spawn(|| {}); }", RuleSet::SIM),
            [RuleId::D1]
        );
    }

    #[test]
    fn d2_flags_hash_collections() {
        assert_eq!(
            violations("use std::collections::HashMap;", RuleSet::SIM),
            [RuleId::D2]
        );
        // …but not in the bench tier.
        assert!(violations("use std::collections::HashMap;", RuleSet::BENCH).is_empty());
    }

    #[test]
    fn d3_flags_literal_seeds_only() {
        assert_eq!(violations("fn f() { let r = SimRng::new(42); }", RuleSet::SIM), [RuleId::D3]);
        assert!(violations("fn f(s: u64) { let r = SimRng::new(s); }", RuleSet::SIM).is_empty());
        assert!(violations("fn f() { let r = SimRng::new(cfg.seed); }", RuleSet::SIM).is_empty());
        // No D3 inside crates/sim's own rule set.
        assert!(violations("fn f() { let r = SimRng::new(42); }", RuleSet::SIM_RNG_HOME).is_empty());
    }

    #[test]
    fn d4_flags_unsafe() {
        assert_eq!(
            violations("fn f() { unsafe { std::hint::unreachable_unchecked() } }", RuleSet::PLAIN),
            [RuleId::D4]
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                use std::time::Instant;
                fn t() { let _ = std::thread::spawn(|| {}); let _ = SimRng::new(1); }
            }
        "#;
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn cfg_test_fn_with_stacked_attrs_is_exempt() {
        let src = r#"
            #[cfg(test)]
            #[allow(dead_code)]
            fn helper() { let m = HashMap::new(); }
            fn real() { let m = HashMap::new(); }
        "#;
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D2]);
    }

    #[test]
    fn cfg_test_use_statement_is_exempt() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn cfg_any_including_test_is_exempt() {
        let src = "#[cfg(any(test, fuzzing))]\nfn f() { let m = HashMap::new(); }\n";
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn non_test_cfg_is_not_exempt() {
        let src = "#[cfg(target_os = \"linux\")]\nfn f() { let m = HashMap::new(); }\n";
        assert_eq!(violations(src, RuleSet::SIM), [RuleId::D2]);
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = r###"
            // HashMap Instant unsafe SimRng::new(42)
            /* HashMap /* Instant */ unsafe */
            fn f() { let s = "HashMap Instant unsafe"; let r = r#"HashMap"#; }
        "###;
        assert!(violations(src, RuleSet::SIM).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line() {
        let src = "use std::collections::HashMap; // scalewall-lint: allow(D2) -- fixture\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].suppressed, 1);
        assert_eq!(p[0].reason, "fixture");
    }

    #[test]
    fn pragma_on_own_line_covers_next_code_line() {
        let src = "// scalewall-lint: allow(D1) -- sanctioned probe\n\nuse std::time::Instant;\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p[0].suppressed, 1);
    }

    #[test]
    fn pragma_does_not_leak_past_its_scope() {
        let src = "// scalewall-lint: allow(D2) -- first only\nlet a = HashMap::new();\nlet b = HashMap::new();\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn pragma_wrong_rule_does_not_suppress() {
        let src = "use std::collections::HashMap; // scalewall-lint: allow(D1) -- wrong rule\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        // The D2 fires AND the pragma is unused.
        assert_eq!(
            v.iter().map(|v| v.rule).collect::<Vec<_>>(),
            [RuleId::D2, RuleId::Pragma]
        );
    }

    #[test]
    fn malformed_pragma_is_a_violation() {
        for bad in [
            "// scalewall-lint: allow(D9) -- nope",
            "// scalewall-lint: allow(D2)",
            "// scalewall-lint: allow(D2) --   ",
            "// scalewall-lint: allow() -- empty",
            "// scalewall-lint: deny(D2) -- wrong verb",
        ] {
            let (v, _) = lint_source(bad, RuleSet::SIM);
            assert_eq!(v.len(), 1, "{bad}");
            assert_eq!(v[0].rule, RuleId::Pragma, "{bad}");
        }
    }

    #[test]
    fn unused_pragma_is_a_violation() {
        let src = "// scalewall-lint: allow(D2) -- stale\nlet x = 1;\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.iter().map(|v| v.rule).collect::<Vec<_>>(), [RuleId::Pragma]);
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        // Quoting the pragma syntax in documentation must create neither a
        // live suppression nor an unused-pragma violation.
        for src in [
            "//! // scalewall-lint: allow(D2) -- quoted in module docs\nlet x = 1;\n",
            "/// // scalewall-lint: allow(D2) -- quoted in item docs\nuse std::collections::HashMap;\n",
            "/** scalewall-lint: allow(D1) -- quoted in block docs */\nlet x = 1;\n",
        ] {
            let (v, p) = lint_source(src, RuleSet::PLAIN);
            assert!(v.is_empty(), "{src}: {v:?}");
            assert!(p.is_empty(), "{src}: {p:?}");
        }
        // …and a doc-comment "pragma" cannot suppress a real violation.
        let src = "/// scalewall-lint: allow(D2) -- docs only\nuse std::collections::HashMap;\n";
        let (v, _) = lint_source(src, RuleSet::SIM);
        assert_eq!(v.iter().map(|v| v.rule).collect::<Vec<_>>(), [RuleId::D2]);
    }

    #[test]
    fn multi_rule_pragma() {
        let src = "// scalewall-lint: allow(D1, D2) -- both on next line\nuse std::time::Instant; use std::collections::HashMap;\n";
        let (v, p) = lint_source(src, RuleSet::SIM);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p[0].suppressed, 2);
    }

    #[test]
    fn tiering_matches_layout() {
        assert_eq!(ruleset_for("crates/cubrick/src/store.rs"), Some(RuleSet::SIM));
        assert_eq!(ruleset_for("crates/sim/src/rng.rs"), Some(RuleSet::SIM_RNG_HOME));
        assert_eq!(
            ruleset_for("crates/sim/src/sync.rs"),
            Some(RuleSet { d4: false, ..RuleSet::SIM_RNG_HOME })
        );
        assert_eq!(ruleset_for("crates/bench/src/microbench.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/bench/src/figures/fig4a.rs"), Some(RuleSet::BENCH));
        assert_eq!(ruleset_for("crates/cubrick/tests/props.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("tests/determinism.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/lint/src/lib.rs"), Some(RuleSet::PLAIN));
        assert_eq!(ruleset_for("crates/lint/fixtures/d1_wall_clock.rs"), None);
    }
}
