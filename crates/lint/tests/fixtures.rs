//! Fixture tests: each seeded-violation fixture must trip exactly its
//! rule, clean fixtures must stay clean, and — the property test —
//! token-preserving mutations of clean fixtures must stay clean.

use std::path::Path;

use scalewall_lint::{lint_source, RuleId, RuleSet};
use scalewall_sim::prop;
use scalewall_sim::SimRng;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_hit(src: &str, rules: RuleSet) -> Vec<RuleId> {
    let (violations, _) = lint_source(src, rules);
    let mut hit: Vec<RuleId> = violations.iter().map(|v| v.rule).collect();
    hit.sort();
    hit.dedup();
    hit
}

#[test]
fn clean_fixture_is_clean() {
    let src = fixture("clean.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), Vec::<RuleId>::new());
}

#[test]
fn d1_fixture_trips_only_d1() {
    let src = fixture("d1_wall_clock.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), [RuleId::D1]);
    let (violations, _) = lint_source(&src, RuleSet::SIM);
    // Instant, SystemTime (import + uses) and thread::spawn all land.
    assert!(violations.len() >= 3, "{violations:?}");
}

#[test]
fn d2_fixture_trips_only_d2() {
    let src = fixture("d2_hash_iteration.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), [RuleId::D2]);
    // The bench tier tolerates hash maps.
    assert_eq!(rules_hit(&src, RuleSet::BENCH), Vec::<RuleId>::new());
}

#[test]
fn d3_fixture_trips_only_d3_and_only_once() {
    let src = fixture("d3_literal_seed.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), [RuleId::D3]);
    let (violations, _) = lint_source(&src, RuleSet::SIM);
    // fork() and config-seeded construction must not be flagged.
    assert_eq!(violations.len(), 1, "{violations:?}");
    // Inside crates/sim the same source is legal.
    assert_eq!(rules_hit(&src, RuleSet::SIM_RNG_HOME), Vec::<RuleId>::new());
}

#[test]
fn d4_fixture_trips_in_every_tier() {
    let src = fixture("d4_unsafe.rs");
    for rules in [RuleSet::SIM, RuleSet::BENCH, RuleSet::PLAIN] {
        assert_eq!(rules_hit(&src, rules), [RuleId::D4]);
    }
}

/// The SIM tier with the D7 hot-path audit on, as `ruleset_for`
/// produces for `HOT_PATHS`.
const HOT: RuleSet = RuleSet { d7: true, ..RuleSet::SIM };

#[test]
fn d5_fixture_trips_only_d5_once_per_breach() {
    let src = fixture("d5_stream_discipline.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), [RuleId::D5]);
    let (violations, _) = lint_source(&src, RuleSet::SIM);
    // One per sub-rule: duplicate label, fork-after-draw, domain flow.
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn d5_clean_pair_is_clean() {
    let src = fixture("d5_stream_discipline_clean.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), Vec::<RuleId>::new());
}

#[test]
fn d6_fixture_trips_only_d6() {
    let src = fixture("d6_lock_order.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), [RuleId::D6]);
    let (violations, _) = lint_source(&src, RuleSet::SIM);
    // The nested acquire plus both cycle-participating sites.
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn d6_clean_pair_is_clean() {
    let src = fixture("d6_lock_order_clean.rs");
    assert_eq!(rules_hit(&src, RuleSet::SIM), Vec::<RuleId>::new());
}

#[test]
fn d7_fixture_trips_only_on_hot_paths() {
    let src = fixture("d7_panic_surface.rs");
    assert_eq!(rules_hit(&src, HOT), [RuleId::D7]);
    let (violations, _) = lint_source(&src, HOT);
    // unwrap, expect, panic!, unreachable!, todo!, v[0].
    assert_eq!(violations.len(), 6, "{violations:?}");
    // Off the hot paths the same source is not D7's business.
    assert_eq!(rules_hit(&src, RuleSet::SIM), Vec::<RuleId>::new());
}

#[test]
fn d7_clean_pair_is_clean_even_on_hot_paths() {
    let src = fixture("d7_panic_surface_clean.rs");
    assert_eq!(rules_hit(&src, HOT), Vec::<RuleId>::new());
}

#[test]
fn lexer_edge_fixture_is_inert() {
    // Raw strings spanning pragma-looking lines, escaped-newline string
    // continuations, and nested block comments: no violations, and no
    // pragmas harvested out of string data.
    let src = fixture("lexer_edges.rs");
    let (violations, pragmas) = lint_source(&src, RuleSet::SIM);
    assert_eq!(violations, Vec::new());
    assert_eq!(pragmas, Vec::new());
}

/// Pinned regression for call-graph held-set propagation: `outer` holds
/// the lock across a two-hop call chain whose far end re-acquires it.
/// The exact report site (the call, not the acquire) is pinned so the
/// propagation can never silently regress to direct-acquire-only.
#[test]
fn pinned_held_set_propagation_through_two_hops() {
    let src = r#"
struct S { a: Mutex<u32> }
impl S {
    fn outer(&self) {
        let g = self.a.lock();
        self.middle();
    }
    fn middle(&self) {
        self.inner();
    }
    fn inner(&self) {
        let h = self.a.lock();
        let _ = h;
    }
}
"#;
    let (violations, _) = lint_source(src, RuleSet::SIM);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.rule, RuleId::D6);
    assert_eq!(v.line, 6, "reported at the call site: {v:?}");
    assert!(v.message.contains("S::a"), "{}", v.message);
    assert!(v.message.contains("held across a call"), "{}", v.message);
}

#[test]
fn pragma_fixture_is_clean_with_inventory() {
    let src = fixture("pragma_allowed.rs");
    let (violations, pragmas) = lint_source(&src, RuleSet::SIM);
    assert_eq!(violations, Vec::new());
    assert_eq!(pragmas.len(), 4);
    assert!(pragmas.iter().all(|p| p.suppressed > 0), "{pragmas:?}");
    assert!(pragmas.iter().all(|p| p.reason.starts_with("fixture:") || !p.reason.is_empty()));
}

// ------------------------------------------------------------- property

/// Insert comment/whitespace noise between the lines of `src` and at
/// random column-safe points: the token stream (and thus the verdict)
/// must not change. Mutations are line-based so we never split a token.
fn mutate_token_preserving(rng: &mut SimRng, src: &str) -> String {
    let mut out = String::new();
    for line in src.lines() {
        // Occasionally prepend a full-line block or line comment with
        // scary content; both are invisible to the rules.
        match rng.below(6) {
            0 => out.push_str("/* noise: HashMap Instant unsafe SimRng::new(1) */\n"),
            1 => out.push_str("// noise: SystemTime std::thread::spawn HashSet\n"),
            2 => out.push('\n'),
            _ => {}
        }
        // Random indentation changes are token-preserving.
        for _ in 0..rng.below(3) {
            out.push(' ');
        }
        out.push_str(line);
        // Trailing line comment — but never on a line that might host a
        // pragma already (fixtures' pragmas must stay last on their line).
        if !line.contains("scalewall-lint:") && rng.chance(0.2) {
            out.push_str(" // trailing noise: unsafe HashMap");
        }
        out.push('\n');
    }
    out
}

#[test]
fn prop_token_preserving_mutations_of_clean_fixtures_stay_clean() {
    let clean = [
        fixture("clean.rs"),
        fixture("pragma_allowed.rs"),
        fixture("d5_stream_discipline_clean.rs"),
        fixture("d6_lock_order_clean.rs"),
        fixture("d7_panic_surface_clean.rs"),
        fixture("lexer_edges.rs"),
    ];
    prop::check_n(
        "lint_clean_fixtures_stable_under_noise",
        96,
        move |rng| {
            let which = rng.below(clean.len() as u64) as usize;
            (which, mutate_token_preserving(rng, &clean[which]))
        },
        |(_, mutated)| {
            // HOT ⊇ SIM here: the clean fixtures must stay clean even
            // with the D7 hot-path audit switched on.
            let (violations, _) = lint_source(mutated, HOT);
            assert_eq!(violations, Vec::new(), "mutated source:\n{mutated}");
        },
    );
}

#[test]
fn prop_seeded_violations_survive_noise() {
    // The dual property: mutations must not *hide* violations either.
    // Verdict stability under token-preserving mutation is the lint's
    // own replay contract: same token stream, same verdict.
    let dirty = [
        (fixture("d1_wall_clock.rs"), RuleId::D1),
        (fixture("d2_hash_iteration.rs"), RuleId::D2),
        (fixture("d3_literal_seed.rs"), RuleId::D3),
        (fixture("d4_unsafe.rs"), RuleId::D4),
        (fixture("d5_stream_discipline.rs"), RuleId::D5),
        (fixture("d6_lock_order.rs"), RuleId::D6),
        (fixture("d7_panic_surface.rs"), RuleId::D7),
    ];
    prop::check_n(
        "lint_dirty_fixtures_stable_under_noise",
        96,
        move |rng| {
            let idx = rng.below(dirty.len() as u64) as usize;
            let (src, rule) = &dirty[idx];
            (mutate_token_preserving(rng, src), *rule)
        },
        |(mutated, rule)| {
            let (violations, _) = lint_source(mutated, HOT);
            assert!(
                violations.iter().any(|v| v.rule == *rule),
                "{rule} vanished from mutated source:\n{mutated}"
            );
        },
    );
}
