//! Lexer edge cases (satellite of the parser work): raw strings that
//! span pragma-looking lines, escaped-newline string continuations, and
//! nested block comments must all stay inert — no violations, and no
//! pragmas harvested out of string data.

fn raw_strings() -> (&'static str, &'static str) {
    let spanning = r#"
        // scalewall-lint: allow(D2) -- this is string data, not a pragma
        HashMap Instant unsafe
    "#;
    let escaped = "line one \
        continued: SimRng::new(42) HashSet";
    (spanning, escaped)
}

/* nested /* block /* comments */ with HashMap */ and Instant */
fn after_comments() -> u32 {
    0
}
