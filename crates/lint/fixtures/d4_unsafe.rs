//! Seeded D4 violation: `unsafe` outside `sim::sync`. Any tier must
//! reject this file (D4 is on in every tier).

pub fn reinterpret(v: u64) -> f64 {
    unsafe { std::mem::transmute::<u64, f64>(v) }
}
