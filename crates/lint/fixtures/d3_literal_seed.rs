//! Seeded D3 violation: a literal-seeded RNG outside `crates/sim`,
//! breaking the fork discipline. `--tier sim` must exit non-zero.

use scalewall_sim::SimRng;

pub fn private_randomness() -> u64 {
    // A component minting its own stream from a magic number: adding or
    // removing draws anywhere else no longer replays identically.
    let mut rng = SimRng::new(0xDEAD_BEEF);
    rng.next_u64()
}

pub fn sanctioned(parent: &mut SimRng, config_seed: u64) -> (SimRng, SimRng) {
    // These two shapes are the allowed ones and must NOT be flagged.
    (parent.fork(7), SimRng::new(config_seed))
}
