//! Seeded D5 fixture: every RNG stream-discipline breach in one file.
//! The lint gate skips `fixtures/`; these violations are on purpose.

mod workload {
    use scalewall_sim::SimRng;

    /// D5a: two fork sites sharing one static label — the child streams
    /// would be identical, silently correlating "independent" processes.
    fn duplicate_labels(rng: &mut SimRng) {
        let queries = rng.fork(7);
        let arrivals = rng.fork(7);
        let _ = (queries, arrivals);
    }

    /// D5b: drawing from a stream and then forking it again — the fork
    /// label no longer pins the child's position ("fork before fan-out").
    fn fork_after_draw(rng: &mut SimRng) {
        let mut hosts = rng.fork(1);
        let jitter = hosts.below(100);
        let per_host = hosts.fork(2);
        let _ = (jitter, per_host);
    }

    /// D5c: a workload stream handed into fault code — fault decisions
    /// would perturb query arrivals (and vice versa) across replays.
    fn leak_into_faults(rng: &mut SimRng) {
        super::fault::inject(rng);
    }
}

mod fault {
    use scalewall_sim::SimRng;

    pub fn inject(rng: &mut SimRng) {
        let _ = rng.unit();
    }
}
