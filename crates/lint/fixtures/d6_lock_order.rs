//! Seeded D6 fixture: a nested same-lock acquire and an a/b–b/a
//! lock-order cycle across two functions.

use scalewall_sim::sync::RwLock;

struct Catalog {
    tables: RwLock<u32>,
    shards: RwLock<u32>,
}

impl Catalog {
    /// Nested same-lock acquire: `write` then `read` while still held —
    /// self-deadlock on the non-reentrant shim locks.
    fn nested(&self) {
        let w = self.tables.write();
        let r = self.tables.read();
        let _ = (w, r);
    }

    /// One half of a lock-order cycle…
    fn tables_then_shards(&self) {
        let t = self.tables.write();
        let s = self.shards.read();
        let _ = (t, s);
    }

    /// …and the other half: shards before tables.
    fn shards_then_tables(&self) {
        let s = self.shards.write();
        let t = self.tables.read();
        let _ = (s, t);
    }
}
