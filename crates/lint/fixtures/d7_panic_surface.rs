//! Seeded D7 fixture: every panic-surface shape the hot-path audit
//! flags — unwrap, expect, the panic macro family, and literal indexing.

fn unwrap_and_expect(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    a + b
}

fn panic_family(n: u32) -> u32 {
    match n {
        0 => panic!("boom"),
        1 => unreachable!(),
        2 => todo!(),
        _ => n,
    }
}

fn literal_index(v: &[u32]) -> u32 {
    v[0]
}
