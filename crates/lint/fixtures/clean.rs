//! Clean fixture: everything a sim-facing file may legitimately do,
//! plus every lexical trap that must NOT false-positive — forbidden
//! names inside strings, raw strings, char-literal context, nested
//! block comments, and `#[cfg(test)]` items.
//!
//! `scalewall-lint --tier sim` over this file must exit 0.

use std::collections::{BTreeMap, BTreeSet};

/* A block comment mentioning HashMap, Instant, and unsafe.
   /* Nested: SystemTime, std::thread::spawn, SimRng::new(42). */
   Still inside the outer comment. */

pub struct Registry<'a> {
    label: &'a str,
    members: BTreeMap<u64, BTreeSet<u64>>,
}

impl<'a> Registry<'a> {
    pub fn new(label: &'a str) -> Self {
        Registry { label, members: BTreeMap::new() }
    }

    pub fn decoys(&self) -> Vec<String> {
        // Forbidden names inside literals are not code.
        let plain = "HashMap and Instant and unsafe".to_string();
        let raw = r#"SystemTime::now() in a raw "string""#.to_string();
        let hashed = r##"even r#"nested"# raw strings: std::thread::spawn"##.to_string();
        let bytes = b"HashMap".to_vec();
        let marker = 'u'; // not the start of `unsafe`
        let newline = '\n';
        let _ = (marker, newline, bytes);
        vec![plain, raw, hashed, self.label.to_string()]
    }

    pub fn ordered_sum(&self) -> u64 {
        // BTreeMap iteration is deterministic — the sanctioned pattern.
        self.members.values().map(|s| s.len() as u64).sum()
    }
}

pub fn seeded_from_config(seed: u64) -> u64 {
    // Non-literal RNG seeding is fine (the seed flows from outside).
    let range = 0..10u64;
    seed.wrapping_add(range.end)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_use_anything() {
        let mut m = HashMap::new();
        m.insert(1u64, Instant::now());
        let _t = std::thread::spawn(|| {}).join();
        assert_eq!(m.len(), 1);
    }
}
