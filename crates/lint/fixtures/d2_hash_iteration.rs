//! Seeded D2 violations: hash-ordered collections in sim-facing code,
//! including the order-sensitive iteration shapes the rule exists for.
//! `--tier sim` must exit non-zero.

use std::collections::{HashMap, HashSet};

pub fn sum_in_hash_order(m: &HashMap<u64, f64>) -> f64 {
    // Float summation order = hash order = replay divergence.
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

pub fn first_in_hash_order(s: &HashSet<u64>) -> Option<u64> {
    s.iter().next().copied()
}

pub fn drain_in_hash_order(m: &mut HashMap<u64, u64>) -> Vec<u64> {
    m.drain().map(|(k, _)| k).collect()
}
