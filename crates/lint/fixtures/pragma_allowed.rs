//! Pragma fixture: every seeded violation is suppressed by a scoped,
//! reasoned pragma. `--tier sim` must exit 0, and the pragma inventory
//! must list all three allows.

use std::collections::HashMap; // scalewall-lint: allow(D2) -- fixture: point-lookup cache, never iterated

pub struct Cache {
    // scalewall-lint: allow(D2) -- fixture: same cache, field declaration
    slots: HashMap<u64, u64>,
}

impl Cache {
    pub fn probe_wall(&self) -> u128 {
        // Stacked pragmas: both govern the next code line.
        // scalewall-lint: allow(D1) -- fixture: sanctioned wall-clock probe
        // scalewall-lint: allow(D2) -- fixture: scratch map, never iterated
        let (t, scratch) = (std::time::Instant::now(), HashMap::<u64, u64>::new());
        t.elapsed().as_nanos() + scratch.len() as u128 + self.slots.len() as u128
    }
}
