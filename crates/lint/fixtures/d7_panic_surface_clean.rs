//! Clean pair for the D7 fixture: the same shapes written to degrade —
//! `?`, `.get`/`.first` with defaults, and the fixed-size-array idiom.

fn checked(x: Option<u32>) -> Option<u32> {
    let a = x?;
    Some(a + 1)
}

fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

fn indexed(v: &[u32], i: usize) -> u32 {
    v.get(i).copied().unwrap_or_default()
}

struct Wheel {
    occupied: [u64; 4],
}

impl Wheel {
    /// Literal index into a fixed-size array field: the kernel's
    /// occupancy-bitmask idiom, bounded by the type.
    fn level0(&self) -> u64 {
        self.occupied[0]
    }
}
