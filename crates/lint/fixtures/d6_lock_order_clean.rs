//! Clean pair for the D6 fixture: guards dropped before re-acquiring,
//! and a single consistent acquisition order (tables before shards).

use scalewall_sim::sync::RwLock;

struct Catalog {
    tables: RwLock<u32>,
    shards: RwLock<u32>,
}

impl Catalog {
    fn sequential(&self) {
        let w = self.tables.write();
        drop(w);
        let r = self.tables.read();
        let _ = r;
    }

    fn ordered_writer(&self) {
        let t = self.tables.write();
        let s = self.shards.read();
        let _ = (t, s);
    }

    fn ordered_reader(&self) {
        let t = self.tables.read();
        let s = self.shards.write();
        let _ = (t, s);
    }
}
