//! Clean pair for the D5 fixture: the sanctioned fork discipline —
//! distinct static labels, hierarchical fan-out before any draw, and
//! fault code drawing only from its own stream.

mod workload {
    use scalewall_sim::SimRng;

    fn fan_out(rng: &mut SimRng, hosts: u64) {
        let mut topo = rng.fork(1);
        let mut queries = rng.fork(2);
        for h in 0..hosts {
            let per_host = topo.fork(h);
            let _ = per_host;
        }
        let _ = queries.unit();
    }
}

mod fault {
    use scalewall_sim::SimRng;

    pub fn inject(rng: &mut SimRng) {
        let _ = rng.unit();
    }
}
