//! Seeded D1 violations: wall-clock time and OS threads in what the
//! lint is told is sim-facing code. `--tier sim` must exit non-zero.

use std::time::{Instant, SystemTime};

pub fn elapsed_wall() -> u128 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    std::thread::spawn(|| {}).join().ok();
    t0.elapsed().as_nanos()
}
