//! Quickstart: Cubrick as an embedded analytic engine.
//!
//! Shows the single-node core — schema with granular partitioning,
//! ingestion into bricks, the query dialect, brick pruning, and adaptive
//! compression — without any cluster machinery.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use scalewall::cubrick::hotness::MemoryMonitorConfig;
use scalewall::cubrick::query::{execute_partition, parse_query};
use scalewall::cubrick::schema::SchemaBuilder;
use scalewall::cubrick::store::PartitionData;
use scalewall::cubrick::value::{Row, Value};

fn main() {
    // 1. A schema: every dimension declares its range configuration —
    //    Cubrick range-partitions on *all* dimensions (granular
    //    partitioning), which is what makes filters prune whole bricks.
    let schema = Arc::new(
        SchemaBuilder::new()
            .int_dim("ds", 0, 365, 15) // a year of days, 15-day buckets
            .str_dim("country", 200, 20) // dictionary-encoded
            .metric("clicks")
            .metric("cost")
            .build()
            .expect("valid schema"),
    );

    // 2. Ingest rows. Rows land in the brick addressed by their
    //    dimension coordinates; no indexes to maintain.
    let mut partition = PartitionData::new(schema);
    let countries = ["US", "BR", "IN", "JP", "DE"];
    for ds in 0..365i64 {
        for (i, country) in countries.iter().enumerate() {
            let row = Row::new(
                vec![Value::Int(ds), Value::from(*country)],
                vec![(ds % 50 + i as i64) as f64, 0.25 * (i as f64 + 1.0)],
            );
            partition.ingest(&row).expect("row matches schema");
        }
    }
    println!(
        "ingested {} rows into {} bricks ({} bytes in memory)\n",
        partition.rows(),
        partition.brick_count(),
        partition.memory_footprint()
    );

    // 3. Query with the text dialect. The ds filter prunes to the bricks
    //    overlapping the window before any column is read.
    let query = parse_query(
        "select sum(clicks), avg(cost), count(*) from ads \
         where ds between 300 and 330 and country in ('US', 'BR') \
         group by country",
    )
    .expect("valid query");
    let output = execute_partition(&mut partition, &query, 1)
        .expect("query runs")
        .finalize();
    println!("query: recent month, US+BR, grouped by country");
    println!("columns: country, {}", output.columns.join(", "));
    for row in &output.rows {
        let key: Vec<String> = row.key.iter().map(|v| v.to_string()).collect();
        let aggs: Vec<String> = row.aggs.iter().map(|a| format!("{a:.2}")).collect();
        println!("  {:4}  {}", key.join(","), aggs.join("  "));
    }
    let stats = partition.stats();
    println!(
        "\nbricks scanned: {}, pruned: {} (granular partitioning at work)\n",
        stats.bricks_scanned, stats.bricks_pruned
    );

    // 4. Adaptive compression: pretend the host is under memory pressure.
    //    Cold bricks compress (real codecs: RLE / bit-packing / delta /
    //    XOR floats); queries keep working, transparently.
    let before = partition.memory_footprint();
    let monitor = MemoryMonitorConfig {
        budget_bytes: before / 4,
        ..Default::default()
    };
    let (compressed, _) = partition.run_memory_monitor(&monitor);
    let after = partition.memory_footprint();
    println!(
        "memory monitor: compressed {compressed} bricks, footprint {before} → {after} bytes \
         ({:.1}x)",
        before as f64 / after.max(1) as f64
    );

    let verify = parse_query("select count(*) from ads").expect("valid");
    let output = execute_partition(&mut partition, &verify, 1)
        .expect("query runs")
        .finalize();
    println!(
        "count(*) after compression: {} (identical results, transparently decompressed)",
        output.scalar().expect("scalar")
    );
}
