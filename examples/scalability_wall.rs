//! The scalability wall, end to end: watch a fully-sharded table breach
//! the 99 % SLA as the cluster grows while a partially-sharded one
//! doesn't care.
//!
//! Run: `cargo run --release --example scalability_wall`

use scalewall::cluster::deployment::{Deployment, DeploymentConfig};
use scalewall::cluster::driver::{run_query, QueryOptions};
use scalewall::cluster::net::{NetModel, NetModelConfig};
use scalewall::cluster::wall::{success_ratio, wall_point};
use scalewall::cluster::workload::standard_schema;
use scalewall::cubrick::catalog::RowMapping;
use scalewall::cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall::cubrick::query::Query;
use scalewall::cubrick::sharding::ShardMapping;
use scalewall::sim::{SimDuration, SimRng, SimTime};

const FAILURE_P: f64 = 1e-4; // the paper's 0.01 % per-server failure
const SLA: f64 = 0.99;

fn measured_success(dep: &mut Deployment, table: &str, queries: u64, seed: u64) -> f64 {
    let mut proxy = CubrickProxy::new(ProxyConfig {
        max_retries: 0,
        ..Default::default()
    });
    let net = NetModel::new(NetModelConfig {
        server_failure_probability: FAILURE_P,
        ..Default::default()
    });
    let mut rng = SimRng::new(seed);
    let query = Query::count_star(table);
    let opts = QueryOptions {
        execute_data: false,
        ..Default::default()
    };
    let mut now = SimTime::from_secs(3_600);
    let mut ok = 0u64;
    for _ in 0..queries {
        if run_query(dep, &mut proxy, &net, &query, &opts, now, &mut rng).success {
            ok += 1;
        }
        now += SimDuration::from_millis(500);
    }
    ok as f64 / queries as f64
}

fn main() {
    println!(
        "theoretical wall for p={FAILURE_P}, SLA={SLA}: {} nodes\n",
        wall_point(FAILURE_P, SLA)
    );
    println!(
        "{:>6}  {:>12} {:>10}  {:>14}  {:>8}",
        "hosts", "full-shard", "(model)", "partial-shard", "verdict"
    );
    for hosts in [8u32, 32, 64, 128, 192] {
        let mut dep = Deployment::new(DeploymentConfig {
            regions: 3,
            hosts_per_region: hosts,
            racks_per_region: (hosts / 8).max(1),
            max_shards: 100_000,
            ..Default::default()
        });
        // Fully sharded: the table spans every host → fan-out grows with
        // the cluster. Partially sharded: always 8 partitions.
        dep.create_table(
            "full",
            standard_schema(365),
            hosts,
            RowMapping::Hash,
            ShardMapping::Monotonic,
            SimTime::ZERO,
        )
        .expect("create full");
        dep.create_table(
            "partial",
            standard_schema(365),
            8,
            RowMapping::Hash,
            ShardMapping::Monotonic,
            SimTime::ZERO,
        )
        .expect("create partial");

        let full = measured_success(&mut dep, "full", 4_000, hosts as u64);
        let partial = measured_success(&mut dep, "partial", 4_000, hosts as u64 + 1);
        println!(
            "{hosts:>6}  {full:>12.4} {:>10.4}  {partial:>14.4}  {}",
            success_ratio(hosts as u64, FAILURE_P),
            if full < SLA {
                "full-sharding BREACHES SLA"
            } else {
                "ok"
            }
        );
    }
    println!(
        "\npartial sharding keeps fan-out (and the SLA) constant while the\n\
         cluster scales out — the paper's strategy for breaching the wall."
    );
}
