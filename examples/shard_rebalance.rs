//! Shard management in action: watch Shard Manager drain a host through
//! the automation front door (safety checks included) using graceful
//! migrations, with live queries never noticing.
//!
//! Run: `cargo run --release --example shard_rebalance`

use scalewall::cluster::deployment::{Deployment, DeploymentConfig, APP};
use scalewall::cluster::driver::{run_query, QueryOptions};
use scalewall::cluster::net::{NetModel, NetModelConfig};
use scalewall::cluster::workload::standard_schema;
use scalewall::cubrick::catalog::RowMapping;
use scalewall::cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall::cubrick::query::parse_query;
use scalewall::cubrick::sharding::ShardMapping;
use scalewall::cubrick::value::{Row, Value};
use scalewall::shard_manager::{AutomationEngine, MaintenanceRequest, MaintenanceVerdict};
use scalewall::sim::{SimDuration, SimRng, SimTime};

fn main() {
    let mut dep = Deployment::new(DeploymentConfig {
        regions: 3,
        hosts_per_region: 16,
        max_shards: 10_000,
        ..Default::default()
    });
    dep.create_table(
        "metrics",
        standard_schema(365),
        8,
        RowMapping::Hash,
        ShardMapping::Monotonic,
        SimTime::ZERO,
    )
    .expect("create table");
    let rows: Vec<Row> = (0..5_000)
        .map(|i| {
            Row::new(
                vec![Value::Int(i % 365), Value::Str(format!("svc{}", i % 40))],
                vec![1.0, (i % 7) as f64],
            )
        })
        .collect();
    dep.ingest("metrics", &rows).expect("load");

    // Pick a host in region 0 that owns shards of the table.
    let victim = dep.regions[0]
        .nodes
        .hosts()
        .find(|&h| !dep.regions[0].sm.shards_on(APP, h).is_empty())
        .expect("some host owns shards");
    let owned = dep.regions[0].sm.shards_on(APP, victim);
    println!("{victim} owns shards {owned:?}; requesting maintenance drain...");

    // The automation front door runs safety checks before approving.
    let mut automation = AutomationEngine::default();
    let now = SimTime::from_secs(3_600);
    let request = MaintenanceRequest {
        hosts: vec![victim],
        reason: "kernel upgrade".to_string(),
    };
    let region = &mut dep.regions[0];
    let verdict = automation
        .submit(&mut region.sm, &request, now, &mut region.nodes)
        .expect("request processed");
    match verdict {
        MaintenanceVerdict::Approved { migrations_started } => {
            println!("approved: {migrations_started} graceful migrations started");
        }
        MaintenanceVerdict::Denied { reason } => {
            println!("denied: {reason}");
            return;
        }
    }

    // Serve queries while the drain runs; count disruptions.
    let mut proxy = CubrickProxy::new(ProxyConfig {
        max_retries: 0,
        ..Default::default()
    });
    let net = NetModel::new(NetModelConfig {
        server_failure_probability: 0.0,
        ..Default::default()
    });
    let mut rng = SimRng::new(99);
    let query = parse_query("select count(*) from metrics").expect("parse");
    let mut t = now;
    let mut failed = 0u64;
    let total = 1_200u64; // 2 simulated minutes at 100 ms cadence
    for _ in 0..total {
        dep.tick(t);
        let outcome = run_query(
            &mut dep,
            &mut proxy,
            &net,
            &query,
            &QueryOptions::default(),
            t,
            &mut rng,
        );
        if !outcome.success {
            failed += 1;
        } else {
            assert_eq!(
                outcome.output.expect("data").rows[0].aggs[0],
                5_000.0,
                "results stay exact throughout"
            );
        }
        t += SimDuration::from_millis(100);
    }
    dep.tick(t + SimDuration::from_mins(10));

    println!(
        "served {total} queries during the drain: {failed} failed \
         (graceful protocol forwards through SMC propagation)",
    );
    println!(
        "{victim} now owns {} shards; completed migrations: {}",
        dep.regions[0].sm.shards_on(APP, victim).len(),
        dep.regions[0].sm.migration_history().len()
    );
    dep.regions[0]
        .sm
        .reactivate_host(victim, t)
        .expect("maintenance done");
    println!("maintenance complete, host returned to the pool");
}
