//! Multi-tenant dashboard serving — the workload the paper's partial
//! sharding targets: many small/medium tenant tables on a shared
//! three-region cluster, interactive queries through the proxy, and a
//! host failure handled transparently by failover + cross-region retry.
//!
//! Run: `cargo run --release --example multi_tenant_dashboard`

use scalewall::cluster::deployment::{Deployment, DeploymentConfig};
use scalewall::cluster::driver::{run_query, QueryOptions};
use scalewall::cluster::net::{NetModel, NetModelConfig};
use scalewall::cluster::workload::{gen_query, gen_rows, TablePopulation, WorkloadConfig};
use scalewall::cubrick::catalog::RowMapping;
use scalewall::cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall::cubrick::sharding::ShardMapping;
use scalewall::shard_manager::Region;
use scalewall::sim::{Histogram, SimDuration, SimRng, SimTime};

fn main() {
    let mut rng = SimRng::new(2026);

    // A 3-region cluster, 12 hosts per region.
    let mut dep = Deployment::new(DeploymentConfig {
        regions: 3,
        hosts_per_region: 12,
        max_shards: 100_000,
        ..Default::default()
    });

    // Onboard 8 tenants; each table is partially sharded (8 partitions),
    // so query fan-out stays 8 no matter how many hosts join later.
    let population = TablePopulation::generate(
        &WorkloadConfig {
            tables: 8,
            ..Default::default()
        },
        &mut rng,
    );
    for spec in &population.tables {
        dep.create_table(
            &spec.name,
            spec.schema.clone(),
            8,
            RowMapping::Hash,
            ShardMapping::Monotonic,
            SimTime::ZERO,
        )
        .expect("tenant onboarding");
        let rows = gen_rows(spec, 3_000, 365, &mut rng);
        dep.ingest(&spec.name, &rows).expect("backfill");
    }
    println!("onboarded {} tenants on {} hosts x 3 regions\n", 8, 12);

    // Serve dashboard traffic.
    let mut proxy = CubrickProxy::new(ProxyConfig::default());
    let net = NetModel::new(NetModelConfig::default());
    let mut latency = Histogram::latency_ms();
    let mut now = SimTime::from_secs(3_600);
    let mut ok = 0u64;
    for i in 0..500u64 {
        // Inject a failure mid-run: kill a host in region 0 at query 250.
        if i == 250 {
            let victim = dep.regions[0].nodes.hosts().next().expect("hosts exist");
            println!("!! killing {victim} in region 0 (queries keep succeeding)");
            dep.fail_host(0, victim, now);
        }
        dep.tick(now);
        let spec = population.pick_table(&mut rng).clone();
        let query = gen_query(&spec, 365, &mut rng);
        let outcome = run_query(
            &mut dep,
            &mut proxy,
            &net,
            &query,
            &QueryOptions {
                client_region: Region((i % 3) as u32),
                ..Default::default()
            },
            now,
            &mut rng,
        );
        if outcome.success {
            ok += 1;
            latency.record_duration(outcome.latency);
            if i % 100 == 0 {
                let out = outcome.output.expect("data mode");
                println!(
                    "q{i:03} {} → {} groups, {} rows scanned, {:.1} ms, {} attempt(s)",
                    spec.name,
                    out.rows.len(),
                    out.rows_scanned,
                    outcome.latency.as_millis_f64(),
                    outcome.attempts,
                );
            }
        } else {
            println!("q{i:03} FAILED: {:?}", outcome.error);
        }
        now += SimDuration::from_millis(500);
    }

    // A dashboard staple: top-5 days by clicks for the busiest tenant.
    let top = scalewall::cubrick::query::parse_query(&format!(
        "select sum(clicks), count(*) from {} group by ds order by sum(clicks) desc limit 5",
        population.tables[0].name
    ))
    .expect("valid query");
    let outcome = run_query(
        &mut dep,
        &mut proxy,
        &net,
        &top,
        &QueryOptions::default(),
        now,
        &mut rng,
    );
    if let Some(out) = outcome.output {
        println!(
            "
top 5 days by clicks for {}:",
            population.tables[0].name
        );
        for row in &out.rows {
            println!(
                "  ds={:<4} clicks={:<8} rows={}",
                row.key[0], row.aggs[0], row.aggs[1]
            );
        }
    }

    let s = latency.summary();
    println!(
        "\nserved {ok}/500 queries | latency p50={:.1}ms p99={:.1}ms max={:.1}ms",
        s.p50, s.p99, s.max
    );
    println!(
        "proxy stats: {} retries, {} region failovers, partition cache hits {}",
        proxy.stats.retries, proxy.stats.region_failovers, proxy.stats.cache_hits
    );
    println!(
        "region-0 migrations after the failure (failovers): {}",
        dep.regions[0].sm.migration_history().len()
    );
}
