//! Property-based integration: distributed query results must equal a
//! naive row-store oracle for randomized workloads, schemas, predicates
//! and compression states.

use scalewall::cubrick::hotness::MemoryMonitorConfig;
use scalewall::cubrick::query::{execute_partition, AggFunc, AggSpec, Predicate, Query};
use scalewall::cubrick::schema::SchemaBuilder;
use scalewall::cubrick::store::PartitionData;
use scalewall::cubrick::value::{Row, Value};
use scalewall::sim::prop::{self, gen};
use scalewall::sim::SimRng;
use std::collections::HashMap;
use std::sync::Arc;

const DS_MAX: i64 = 60;
const APPS: usize = 6;

#[derive(Debug, Clone)]
struct OracleRow {
    ds: i64,
    app: usize,
    m: f64,
}

fn partition_from(rows: &[OracleRow], compress: bool) -> PartitionData {
    let schema = Arc::new(
        SchemaBuilder::new()
            .int_dim("ds", 0, DS_MAX, 7)
            .str_dim("app", 32, 5)
            .metric("m")
            .build()
            .unwrap(),
    );
    let mut p = PartitionData::new(schema);
    for r in rows {
        p.ingest(&Row::new(
            vec![Value::Int(r.ds), Value::Str(format!("app{}", r.app))],
            vec![r.m],
        ))
        .unwrap();
    }
    if compress {
        p.run_memory_monitor(&MemoryMonitorConfig {
            budget_bytes: 0,
            ..Default::default()
        });
    }
    p
}

fn gen_row(rng: &mut SimRng) -> OracleRow {
    OracleRow {
        ds: rng.below(DS_MAX as u64) as i64,
        app: rng.below(APPS as u64) as usize,
        m: gen::f64_in(rng, -100.0, 100.0),
    }
}

#[derive(Debug, Clone)]
enum Pred {
    DsEq(i64),
    DsBetween(i64, i64),
    AppEq(usize),
    AppIn(Vec<usize>),
}

fn gen_pred(rng: &mut SimRng) -> Pred {
    match rng.below(4) {
        0 => Pred::DsEq(rng.below(DS_MAX as u64) as i64),
        1 => {
            let a = rng.below(DS_MAX as u64) as i64;
            let b = rng.below(DS_MAX as u64) as i64;
            Pred::DsBetween(a.min(b), a.max(b))
        }
        2 => Pred::AppEq(rng.below(APPS as u64) as usize),
        _ => Pred::AppIn(gen::vec_with(rng, 1, 4, |r| r.below(APPS as u64) as usize)),
    }
}

fn matches(r: &OracleRow, p: &Pred) -> bool {
    match p {
        Pred::DsEq(v) => r.ds == *v,
        Pred::DsBetween(lo, hi) => r.ds >= *lo && r.ds <= *hi,
        Pred::AppEq(a) => r.app == *a,
        Pred::AppIn(aps) => aps.contains(&r.app),
    }
}

fn to_predicate(p: &Pred) -> Predicate {
    match p {
        Pred::DsEq(v) => Predicate::eq("ds", *v),
        Pred::DsBetween(lo, hi) => Predicate::between("ds", *lo, *hi),
        Pred::AppEq(a) => Predicate::eq("app", format!("app{a}").as_str()),
        Pred::AppIn(aps) => Predicate::is_in(
            "app",
            aps.iter().map(|a| Value::Str(format!("app{a}"))).collect(),
        ),
    }
}

#[test]
fn sum_and_count_match_oracle() {
    prop::check_n(
        "sum_and_count_match_oracle",
        48,
        |rng| {
            (
                gen::vec_with(rng, 0, 400, gen_row),
                gen::vec_with(rng, 0, 3, gen_pred),
                gen::any_bool(rng),
            )
        },
        |(rows, preds, compress)| {
            let mut partition = partition_from(rows, *compress);
            let query = Query {
                table: "t".into(),
                aggs: vec![AggSpec::new(AggFunc::Sum, "m"), AggSpec::count_star()],
                predicates: preds.iter().map(to_predicate).collect(),
                group_by: vec![],
                order_by: None,
                limit: None,
            };
            let out = execute_partition(&mut partition, &query, 1).unwrap().finalize();

            let surviving: Vec<&OracleRow> = rows
                .iter()
                .filter(|r| preds.iter().all(|p| matches(r, p)))
                .collect();
            let expect_count = surviving.len() as f64;
            let expect_sum: f64 = surviving.iter().map(|r| r.m).sum();

            if expect_count == 0.0 {
                let count = out.rows.first().map(|r| r.aggs[1]).unwrap_or(0.0);
                assert_eq!(count, 0.0);
            } else {
                assert_eq!(out.rows[0].aggs[1], expect_count);
                assert!(
                    (out.rows[0].aggs[0] - expect_sum).abs() < 1e-6,
                    "sum {} vs oracle {}",
                    out.rows[0].aggs[0],
                    expect_sum
                );
            }
        },
    );
}

#[test]
fn group_by_matches_oracle() {
    prop::check_n(
        "group_by_matches_oracle",
        48,
        |rng| (gen::vec_with(rng, 1, 300, gen_row), gen_pred(rng)),
        |(rows, pred)| {
            let mut partition = partition_from(rows, false);
            let query = Query {
                table: "t".into(),
                aggs: vec![AggSpec::new(AggFunc::Min, "m"), AggSpec::new(AggFunc::Max, "m")],
                predicates: vec![to_predicate(pred)],
                group_by: vec!["app".into()],
                order_by: None,
                limit: None,
            };
            let out = execute_partition(&mut partition, &query, 1).unwrap().finalize();

            let mut oracle: HashMap<String, (f64, f64)> = HashMap::new();
            for r in rows.iter().filter(|r| matches(r, pred)) {
                let e = oracle
                    .entry(format!("app{}", r.app))
                    .or_insert((f64::INFINITY, f64::NEG_INFINITY));
                e.0 = e.0.min(r.m);
                e.1 = e.1.max(r.m);
            }
            assert_eq!(out.rows.len(), oracle.len());
            for row in &out.rows {
                let key = row.key[0].as_str().unwrap();
                let (lo, hi) = oracle[key];
                assert!((row.aggs[0] - lo).abs() < 1e-9);
                assert!((row.aggs[1] - hi).abs() < 1e-9);
            }
        },
    );
}

#[test]
fn avg_consistent_with_sum_over_count() {
    prop::check_n(
        "avg_consistent_with_sum_over_count",
        48,
        |rng| gen::vec_with(rng, 1, 200, gen_row),
        |rows| {
            let mut partition = partition_from(rows, false);
            let query = Query {
                table: "t".into(),
                aggs: vec![
                    AggSpec::new(AggFunc::Avg, "m"),
                    AggSpec::new(AggFunc::Sum, "m"),
                    AggSpec::count_star(),
                ],
                predicates: vec![],
                group_by: vec![],
                order_by: None,
                limit: None,
            };
            let out = execute_partition(&mut partition, &query, 1).unwrap().finalize();
            let (avg, sum, count) = (out.rows[0].aggs[0], out.rows[0].aggs[1], out.rows[0].aggs[2]);
            assert!((avg - sum / count).abs() < 1e-9);
        },
    );
}

#[test]
fn all_rows_round_trips_everything() {
    prop::check_n(
        "all_rows_round_trips_everything",
        48,
        |rng| (gen::vec_with(rng, 0, 200, gen_row), gen::any_bool(rng)),
        |(rows, compress)| {
            let partition = partition_from(rows, *compress);
            let mut restored: Vec<(i64, String, f64)> = partition
                .all_rows()
                .into_iter()
                .map(|r| {
                    (
                        r.dims[0].as_int().unwrap(),
                        r.dims[1].as_str().unwrap().to_string(),
                        r.metrics[0],
                    )
                })
                .collect();
            let mut original: Vec<(i64, String, f64)> = rows
                .iter()
                .map(|r| (r.ds, format!("app{}", r.app), r.m))
                .collect();
            restored.sort_by(|a, b| a.partial_cmp(b).unwrap());
            original.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(restored, original);
        },
    );
}
