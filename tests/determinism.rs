//! Reproducibility contract (EXPERIMENTS.md: one run = one seed): the
//! same seed must replay a bit-identical operational experiment, and
//! forked RNG streams must be immune to sibling-stream activity.

use scalewall::cluster::deployment::DeploymentConfig;
use scalewall_bench::figures::fig5;
use scalewall::cluster::experiment::{Experiment, ExperimentConfig, ExperimentStats};
use scalewall::cluster::fault::{FaultKind, FaultScript};
use scalewall::cluster::workload::WorkloadConfig;
use scalewall::sim::{SimDuration, SimRng, SimTime};

/// A small-but-real operational run: multi-region deployment, skewed
/// query traffic, failures, drains and load balancing, over half a
/// simulated day.
fn run_experiment(seed: u64) -> ExperimentStats {
    run_with_faults(seed, FaultScript::new())
}

fn run_with_faults(seed: u64, faults: FaultScript) -> ExperimentStats {
    let config = ExperimentConfig {
        deployment: DeploymentConfig {
            regions: 2,
            hosts_per_region: 6,
            max_shards: 100_000,
            ..Default::default()
        },
        workload: WorkloadConfig {
            tables: 6,
            ..Default::default()
        },
        duration: SimDuration::from_hours(12),
        query_rate: 0.02,
        rows_per_table: 200,
        host_mtbf: SimDuration::from_days(10),
        drains_per_day: 6.0,
        faults,
        seed,
        ..Default::default()
    };
    Experiment::new(config).run()
}

/// The mid-run fault script used by the fault-replay tests: one host
/// crash and one inter-region partition, both inside the 12h window.
fn test_script() -> FaultScript {
    FaultScript::new()
        .with(
            FaultKind::HostCrash { region: 0 },
            SimTime::from_secs(2 * 3_600),
            SimDuration::from_hours(1),
        )
        .with(
            FaultKind::RegionPartition { a: 0, b: 1 },
            SimTime::from_secs(5 * 3_600),
            SimDuration::from_mins(45),
        )
}

/// Every observable stat, reduced to exactly comparable form (floats by
/// bit pattern, histograms by count/extremes/quantile bits).
fn fingerprint(stats: &ExperimentStats) -> Vec<u64> {
    let mut f = vec![
        stats.queries_ok,
        stats.queries_failed,
        stats.latency.count(),
        stats.latency.mean().to_bits(),
        stats.latency.quantile(0.5).to_bits(),
        stats.latency.quantile(0.99).to_bits(),
        stats.drains_requested,
        stats.drains_denied,
        stats.hot_threshold as u64,
        stats.fault_injections,
        stats.fault_repairs,
        stats.failover_migrations,
        stats.region_failovers,
        stats.same_table_collisions,
        stats.population_fingerprint,
    ];
    if stats.latency.count() > 0 {
        f.push(stats.latency.min().to_bits());
        f.push(stats.latency.max().to_bits());
    }
    f.extend(stats.migrations_per_day.iter().copied());
    f.extend(stats.repairs_per_day.iter().copied());
    f.extend(stats.final_hotness.iter().map(|&h| h as u64));
    f
}

/// Same seed → bit-identical experiment stats, for several distinct
/// seeds; different seeds → different histories.
#[test]
fn same_seed_replays_bit_identical_experiments() {
    let mut fingerprints = Vec::new();
    for seed in [0xE49, 7, 424_242] {
        let a = fingerprint(&run_experiment(seed));
        let b = fingerprint(&run_experiment(seed));
        assert_eq!(a, b, "seed {seed:#x} did not replay bit-identically");
        fingerprints.push(a);
    }
    assert_ne!(
        fingerprints[0], fingerprints[1],
        "distinct seeds should produce distinct histories"
    );
    assert_ne!(fingerprints[1], fingerprints[2]);
}

/// The replay-stability pitfall called out in `crates/sim/src/rng.rs`:
/// a stream obtained from `fork(label)` must not change when a sibling
/// stream adds draws. This is what lets a component gain new stochastic
/// behaviour without perturbing every other component's replay.
#[test]
fn forked_streams_unaffected_by_sibling_draws() {
    // World A: component 1 draws a little.
    let mut root_a = SimRng::new(99);
    let mut comp1_a = root_a.fork(1);
    let _ = comp1_a.next_u64();
    let mut comp2_a = root_a.fork(2);
    let seq_a: Vec<u64> = (0..64).map(|_| comp2_a.next_u64()).collect();

    // World B: component 1 draws a lot more (a code change added draws).
    let mut root_b = SimRng::new(99);
    let mut comp1_b = root_b.fork(1);
    for _ in 0..10_000 {
        let _ = comp1_b.next_u64();
    }
    let mut comp2_b = root_b.fork(2);
    let seq_b: Vec<u64> = (0..64).map(|_| comp2_b.next_u64()).collect();

    assert_eq!(
        seq_a, seq_b,
        "component 2's stream must not depend on component 1's draw count"
    );
}

/// Mid-run fault injection must also replay bit-identically: the fault
/// stream is forked, victim selection is deterministic, and the repair
/// machinery introduces no hidden nondeterminism.
#[test]
fn faulted_experiment_replays_bit_identically() {
    let a = run_with_faults(0xFA11, test_script());
    let b = run_with_faults(0xFA11, test_script());
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "faulted run did not replay bit-identically"
    );
    assert_eq!(a.fault_injections, 2);
    assert_eq!(a.fault_repairs, 2);
}

/// Fig-5-shaped replay at an elevated host count: every query arrival is
/// scheduled through the calendar-wheel event kernel, so this doubles as
/// the kernel's bit-identical-replay gate at cluster scale (the full
/// figure runs the same engine at 10,002 hosts — see `fig5::compute`).
/// Floats are compared by bit pattern: same seed, same bytes.
#[test]
fn fig5_shaped_kernel_replay_is_bit_identical() {
    fn fingerprint() -> Vec<u64> {
        // 1,200 hosts (vs the fast profile's 216) across three fan-out
        // levels; small per-level budget keeps this a smoke replay.
        let results = fig5::compute_custom(400, &[1, 16, 64], |_| 600);
        let mut f = Vec::new();
        for r in &results {
            f.push(r.fanout as u64);
            f.push(r.successes);
            f.push(r.failures);
            f.push(r.summary.p50.to_bits());
            f.push(r.summary.p90.to_bits());
            f.push(r.summary.p99.to_bits());
            f.push(r.summary.p999.to_bits());
            f.push(r.summary.max.to_bits());
        }
        f
    }
    assert_eq!(
        fingerprint(),
        fingerprint(),
        "fig5-shaped kernel workload did not replay bit-identically"
    );
}

/// Fork-stability under event injection: the fault scheduler draws all
/// of its randomness from `rng.fork(3)`, so attaching a fault script to
/// a seed must not perturb the population stream (`fork(1)`) that every
/// other stream's experiment design hangs off. The *in-run* histories
/// legitimately diverge — that is the fault doing its job.
#[test]
fn fault_stream_does_not_perturb_workload_streams() {
    let healthy = run_experiment(0xFA12);
    let faulted = run_with_faults(0xFA12, test_script());
    assert_eq!(
        healthy.population_fingerprint, faulted.population_fingerprint,
        "fault injection perturbed the population stream"
    );
    assert_eq!(healthy.fault_injections, 0);
    assert_eq!(faulted.fault_injections, 2);
    assert_ne!(
        fingerprint(&healthy),
        fingerprint(&faulted),
        "the injected faults should leave a visible mark on the history"
    );
}
