//! Event-kernel equivalence suite (DESIGN.md §5): the calendar-wheel
//! [`EventQueue`] must be observationally *bit-identical* to the retired
//! binary-heap implementation, preserved as [`ReferenceEventQueue`].
//!
//! Every property drives both queues through the same operation trace and
//! compares every observable after every step: pop order as exact
//! `(time, seq, payload)` triples, `len`, `now`, `scheduled_total`, and
//! `peek_time`. The traces mix the three regimes that stress different
//! wheel paths — same-tick collisions (FIFO tie-break), far-future times
//! (overflow promotion across the 2^52 ns horizon), and `clear()` mid-run
//! (cursor re-anchoring) — and the pinned `regression_*` cases keep one
//! named instance of each regime in the suite forever.

use scalewall::sim::prop::{self, gen};
use scalewall::sim::{EventQueue, ReferenceEventQueue, SimDuration, SimRng, SimTime};

/// One step of a kernel trace. Offsets are relative to the queue's `now`
/// at apply time, so generated traces never schedule into the past.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `schedule_at(now + offset_ns)`.
    At(u64),
    /// `schedule_after(offset_ns)`.
    After(u64),
    Pop,
    PopTick,
    Peek,
    Clear,
}

/// Apply `trace` to both implementations in lockstep, asserting every
/// observable matches at every step, then drain both queues dry.
fn assert_equivalent(trace: &[Op]) {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut model: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
    let mut next_payload = 0u64;
    let mut wheel_batch = Vec::new();
    let mut model_batch = Vec::new();

    let step = |wheel: &mut EventQueue<u64>,
                    model: &mut ReferenceEventQueue<u64>,
                    wheel_batch: &mut Vec<_>,
                    model_batch: &mut Vec<_>,
                    next_payload: &mut u64,
                    i: usize,
                    op: Op| {
        match op {
            Op::At(offset) => {
                let at = wheel.now().saturating_add(SimDuration::from_nanos(offset));
                wheel.schedule_at(at, *next_payload);
                model.schedule_at(at, *next_payload);
                *next_payload += 1;
            }
            Op::After(offset) => {
                let delay = SimDuration::from_nanos(offset);
                wheel.schedule_after(delay, *next_payload);
                model.schedule_after(delay, *next_payload);
                *next_payload += 1;
            }
            Op::Pop => match (wheel.pop(), model.pop()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(
                        (a.time, a.seq, a.payload),
                        (b.time, b.seq, b.payload),
                        "pop diverged at op {i}"
                    );
                }
                (a, b) => panic!(
                    "pop presence diverged at op {i}: wheel={:?} model={:?}",
                    a.map(|e| (e.time, e.seq, e.payload)),
                    b.map(|e| (e.time, e.seq, e.payload)),
                ),
            },
            Op::PopTick => {
                let ta = wheel.pop_tick(wheel_batch);
                let tb = model.pop_tick(model_batch);
                assert_eq!(ta, tb, "pop_tick timestamp diverged at op {i}");
                let a: Vec<_> = wheel_batch.iter().map(|e| (e.time, e.seq, e.payload)).collect();
                let b: Vec<_> = model_batch.iter().map(|e| (e.time, e.seq, e.payload)).collect();
                assert_eq!(a, b, "pop_tick batch diverged at op {i}");
            }
            Op::Peek => {
                assert_eq!(
                    wheel.peek_time(),
                    model.peek_time(),
                    "peek_time diverged at op {i}"
                );
            }
            Op::Clear => {
                wheel.clear();
                model.clear();
            }
        }
        assert_eq!(wheel.len(), model.len(), "len diverged after op {i} ({op:?})");
        assert_eq!(wheel.now(), model.now(), "now diverged after op {i} ({op:?})");
        assert_eq!(
            wheel.scheduled_total(),
            model.scheduled_total(),
            "scheduled_total diverged after op {i} ({op:?})"
        );
        assert_eq!(wheel.is_empty(), model.is_empty());
    };

    for (i, &op) in trace.iter().enumerate() {
        step(
            &mut wheel,
            &mut model,
            &mut wheel_batch,
            &mut model_batch,
            &mut next_payload,
            i,
            op,
        );
    }
    // Drain whatever the trace left behind: the tail of the pop order must
    // match too, including events parked in the overflow list.
    let mut i = trace.len();
    while !model.is_empty() || !wheel.is_empty() {
        step(
            &mut wheel,
            &mut model,
            &mut wheel_batch,
            &mut model_batch,
            &mut next_payload,
            i,
            Op::Pop,
        );
        i += 1;
    }
    assert_eq!(wheel.pop().map(|e| e.payload), None);
    assert_eq!(model.pop().map(|e| e.payload), None);
}

/// An offset that lands in one of the interesting distance classes: the
/// same handful of near ticks (forcing exact same-tick collisions once
/// `now` catches up), a medium horizon inside the wheel, or past the
/// 2^52 ns wheel horizon into the overflow list.
fn gen_offset(rng: &mut SimRng) -> u64 {
    match gen::usize_in(rng, 0, 10) {
        // Same-tick pool: a 1 µs tick is 2^10 ns, so 0/1/513 collide on
        // one tick while 1_025 lands on the next.
        0..=3 => [0, 1, 513, 1_025][gen::usize_in(rng, 0, 4)],
        // Within the first wheel level (64 ticks).
        4..=5 => gen::any_u64(rng) % (64 << 10),
        // Anywhere in the wheel: up to ~52 simulated days.
        6..=8 => gen::any_u64(rng) % (1u64 << 52),
        // Far future: beyond the horizon block, through the overflow
        // B-tree and its block-promotion path.
        _ => (1u64 << 52) + gen::any_u64(rng) % (1u64 << 58),
    }
}

/// A mixed trace weighted toward schedules so queues build real depth,
/// with enough pops/batch-pops to march the cursor through cascades.
fn gen_trace(rng: &mut SimRng) -> Vec<Op> {
    gen::vec_with(rng, 1, 120, |rng| match gen::usize_in(rng, 0, 100) {
        0..=39 => Op::At(gen_offset(rng)),
        40..=54 => Op::After(gen_offset(rng)),
        55..=74 => Op::Pop,
        75..=89 => Op::PopTick,
        90..=97 => Op::Peek,
        _ => Op::Clear,
    })
}

/// The tentpole property: arbitrary mixed traces replay bit-identically
/// on the wheel and the reference heap.
#[test]
fn wheel_matches_reference_on_mixed_traces() {
    prop::check("event_kernel_mixed_traces", gen_trace, |trace| {
        assert_equivalent(trace)
    });
}

/// Long schedule-heavy traces, then a full drain: exercises deep wheels
/// where refill must cascade through several levels in sequence.
#[test]
fn wheel_matches_reference_on_schedule_heavy_traces() {
    prop::check_n(
        "event_kernel_schedule_heavy",
        64,
        |rng| {
            gen::vec_with(rng, 50, 400, |rng| match gen::usize_in(rng, 0, 10) {
                0..=7 => Op::At(gen_offset(rng)),
                8 => Op::After(gen_offset(rng)),
                _ => Op::Pop,
            })
        },
        |trace| assert_equivalent(trace),
    );
}

/// Pinned: dense same-tick collisions with interleaved batch pops. The
/// FIFO tie-break (`seq` order within a timestamp) is the contract under
/// test; a wheel that reorders equal-time events fails here first.
#[test]
fn regression_same_tick_tie_breaks() {
    prop::replay(
        "event_kernel_regression_same_tick",
        0x5EED_071E as u64,
        |rng| {
            gen::vec_with(rng, 30, 200, |rng| match gen::usize_in(rng, 0, 10) {
                // Offsets 0/1/513 share a tick; 1_025 is the next tick.
                0..=6 => Op::At([0, 0, 1, 513, 1_025][gen::usize_in(rng, 0, 5)]),
                7..=8 => Op::PopTick,
                _ => Op::Pop,
            })
        },
        |trace| assert_equivalent(trace),
    );
}

/// Pinned: schedules straddling the 2^52 ns horizon so draining must
/// promote whole overflow blocks back into the wheel, interleaved with
/// near-term events that must still win every pop.
#[test]
fn regression_far_future_overflow() {
    prop::replay(
        "event_kernel_regression_overflow",
        0x0F10_0D as u64,
        |rng| {
            gen::vec_with(rng, 20, 150, |rng| match gen::usize_in(rng, 0, 10) {
                0..=3 => Op::At((1u64 << 52) + gen::any_u64(rng) % (1u64 << 56)),
                4..=6 => Op::At(gen::any_u64(rng) % (1u64 << 30)),
                7 => Op::Peek,
                _ => Op::Pop,
            })
        },
        |trace| assert_equivalent(trace),
    );
}

/// Pinned: `clear()` mid-run. The contract keeps the clock, `next_seq`
/// and `scheduled_total` across a clear while dropping the pending set;
/// the wheel must also re-anchor its cursor so post-clear schedules file
/// at correct levels.
#[test]
fn regression_clear_mid_run() {
    prop::replay(
        "event_kernel_regression_clear",
        0xC1EA_2 as u64,
        |rng| {
            let mut trace = gen::vec_with(rng, 10, 60, |rng| match gen::usize_in(rng, 0, 10) {
                0..=5 => Op::At(gen_offset(rng)),
                6..=7 => Op::Pop,
                _ => Op::PopTick,
            });
            trace.push(Op::Clear);
            let tail = gen::vec_with(rng, 10, 60, |rng| match gen::usize_in(rng, 0, 10) {
                0..=6 => Op::At(gen_offset(rng)),
                _ => Op::Pop,
            });
            trace.extend(tail);
            trace
        },
        |trace| assert_equivalent(trace),
    );
}

/// Same-tick batch stress (kernel accounting contract): millions of
/// events spread over a handful of distinct timestamps. `scheduled_total`
/// and `len` must account for every event exactly, each `pop_tick` batch
/// must deliver its whole timestamp in FIFO order, and the payload
/// checksums prove no event was dropped or duplicated.
#[test]
fn same_tick_stress_exact_accounting() {
    const TICKS: u64 = 5;
    const PER_TICK: u64 = 400_000;
    const TOTAL: u64 = TICKS * PER_TICK;

    let mut queue: EventQueue<u64> = EventQueue::new();
    // Five distinct timestamps, deliberately non-adjacent so refill takes
    // a fresh cascade per timestamp. Payload ids are globally unique;
    // id % TICKS names the target timestamp.
    let times: Vec<SimTime> = (0..TICKS)
        .map(|k| SimTime::from_nanos(1_000_000 + k * 77_777_777))
        .collect();
    let mut expect_sum = [0u64; TICKS as usize];
    let mut expect_xor = [0u64; TICKS as usize];
    for id in 0..TOTAL {
        let k = (id % TICKS) as usize;
        queue.schedule_at(times[k], id);
        expect_sum[k] = expect_sum[k].wrapping_add(id);
        expect_xor[k] ^= id;
    }
    assert_eq!(queue.len(), TOTAL as usize);
    assert_eq!(queue.scheduled_total(), TOTAL);

    let mut batch = Vec::new();
    for (k, &time) in times.iter().enumerate() {
        assert_eq!(queue.pop_tick(&mut batch), Some(time));
        assert_eq!(batch.len(), PER_TICK as usize, "timestamp {k} batch size");
        let mut sum = 0u64;
        let mut xor = 0u64;
        let mut last_seq = None;
        for ev in &batch {
            assert_eq!(ev.time, time);
            assert_eq!((ev.payload % TICKS) as usize, k, "event at wrong timestamp");
            // FIFO within the timestamp: seq strictly increasing.
            assert!(last_seq < Some(ev.seq), "tie-break order violated");
            last_seq = Some(ev.seq);
            sum = sum.wrapping_add(ev.payload);
            xor ^= ev.payload;
        }
        assert_eq!(sum, expect_sum[k], "timestamp {k} dropped/duplicated events");
        assert_eq!(xor, expect_xor[k], "timestamp {k} dropped/duplicated events");
        assert_eq!(queue.len() as u64, TOTAL - PER_TICK * (k as u64 + 1));
    }
    assert!(queue.is_empty());
    assert_eq!(queue.pop_tick(&mut batch), None);
    assert_eq!(queue.scheduled_total(), TOTAL);
    assert_eq!(queue.now(), *times.last().unwrap());
}
