//! Integration of the shard-management stack: SM server + coordination
//! store + service discovery, exercised together the way Cubrick uses
//! them (without the database on top).

use scalewall::sim::sync::RwLock;
use scalewall::discovery::{DelayModel, DelayModelConfig, DiscoveryClient, ShardKey};
use scalewall::shard_manager::app_server::MockAppServer;
use scalewall::shard_manager::{
    AppServer, AppServerRegistry, AppSpec, AutomationEngine, HostId, HostInfo, HostState,
    MaintenanceRequest, MaintenanceVerdict, MigrationCause, Rack, Region, ShardId, SmClient,
    SmConfig, SmServer,
};
use scalewall::sim::{SimDuration, SimRng, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

struct Fleet {
    servers: HashMap<HostId, MockAppServer>,
    down: std::collections::HashSet<HostId>,
}

impl AppServerRegistry for Fleet {
    fn server(&mut self, host: HostId) -> Option<&mut dyn AppServer> {
        if self.down.contains(&host) {
            return None;
        }
        self.servers.get_mut(&host).map(|s| s as &mut dyn AppServer)
    }
}

fn fleet(sm: &mut SmServer, hosts: u64) -> Fleet {
    let mut servers = HashMap::new();
    for i in 0..hosts {
        sm.register_host(
            HostInfo::new(HostId(i), Rack((i % 4) as u32), Region(0), 1_000.0),
            SimTime::ZERO,
        )
        .unwrap();
        servers.insert(HostId(i), MockAppServer::with_capacity(1_000.0));
    }
    Fleet {
        servers,
        down: Default::default(),
    }
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn sm_client_sees_allocation_through_discovery_with_delay() {
    let mut sm = SmServer::standalone(SmConfig::default());
    sm.register_app(AppSpec::primary_only("svc", 1_000))
        .unwrap();
    let mut fleet = fleet(&mut sm, 4);

    let hosts = sm
        .allocate_shard("svc", ShardId(7), 10.0, t(100), &mut fleet)
        .unwrap();
    let owner = hosts[0];

    let client = SmClient::new(
        "svc",
        DiscoveryClient::new(
            sm.discovery(),
            DelayModel::new(DelayModelConfig::default()),
            1,
        ),
    );
    // First publish: visible immediately (fallback-to-oldest rule — a
    // brand-new key has no older state to serve).
    assert_eq!(client.resolve(ShardId(7), t(100)), Some(owner));

    // Reassign: the client's view lags by the propagation delay.
    let target = (0..4).map(HostId).find(|&h| h != owner).unwrap();
    sm.begin_migration(
        "svc",
        ShardId(7),
        target,
        false,
        MigrationCause::Manual,
        t(200),
        &mut fleet,
    )
    .unwrap();
    sm.advance_migrations(t(200) + SimDuration::from_mins(10), &mut fleet);
    assert_eq!(sm.host_of("svc", ShardId(7)), Some(target));

    // Immediately after the (simulated) publish, the client may still
    // resolve the old owner; after a generous delay it must see the new.
    let eventually = t(200) + SimDuration::from_mins(30);
    assert_eq!(client.resolve(ShardId(7), eventually), Some(target));
}

#[test]
fn heartbeat_loss_drives_failover_and_discovery_update() {
    let mut sm = SmServer::standalone(SmConfig::default());
    sm.register_app(AppSpec::primary_only("svc", 1_000))
        .unwrap();
    let mut fleet = fleet(&mut sm, 3);
    sm.allocate_shard("svc", ShardId(1), 5.0, t(0), &mut fleet)
        .unwrap();
    let victim = sm.host_of("svc", ShardId(1)).unwrap();

    // Everyone heartbeats until t=30; then the victim goes silent.
    for s in [10u64, 20, 30] {
        for h in 0..3 {
            sm.heartbeat(HostId(h), t(s)).unwrap();
        }
        sm.tick(t(s), &mut fleet);
    }
    fleet.down.insert(victim);
    for s in [35u64, 40, 45, 50] {
        for h in 0..3 {
            if HostId(h) != victim {
                sm.heartbeat(HostId(h), t(s)).unwrap();
            }
        }
        sm.tick(t(s), &mut fleet);
    }
    assert_eq!(sm.host_state(victim), Some(HostState::Dead));
    // Failover ran (or is running); let it finish. The survivors keep
    // heartbeating (a silent tick would expire them too — correctly).
    let later = t(50) + SimDuration::from_mins(30);
    for h in 0..3 {
        if HostId(h) != victim {
            sm.heartbeat(HostId(h), later).unwrap();
        }
    }
    sm.tick(later, &mut fleet);
    let new_owner = sm.host_of("svc", ShardId(1)).unwrap();
    assert_ne!(new_owner, victim);

    // Discovery eventually points clients at the new owner.
    let client = SmClient::new(
        "svc",
        DiscoveryClient::new(
            sm.discovery(),
            DelayModel::new(DelayModelConfig::default()),
            9,
        ),
    );
    assert_eq!(
        client.resolve(ShardId(1), t(50) + SimDuration::from_hours(1)),
        Some(new_owner)
    );
}

#[test]
fn automation_drain_respects_fault_tolerance_budget() {
    let mut sm = SmServer::standalone(SmConfig::default());
    sm.register_app(AppSpec::primary_only("svc", 1_000))
        .unwrap();
    let mut fleet = fleet(&mut sm, 20);
    for s in 0..40 {
        sm.allocate_shard("svc", ShardId(s), 10.0, t(0), &mut fleet)
            .unwrap();
    }
    let mut automation = AutomationEngine::default();

    // One host: fine. Three hosts at once: 15% > 10% budget, denied.
    let ok = automation
        .submit(
            &mut sm,
            &MaintenanceRequest {
                hosts: vec![HostId(0)],
                reason: "ok".into(),
            },
            t(10),
            &mut fleet,
        )
        .unwrap();
    assert!(matches!(ok, MaintenanceVerdict::Approved { .. }));
    let too_many = automation
        .submit(
            &mut sm,
            &MaintenanceRequest {
                hosts: vec![HostId(1), HostId(2), HostId(3)],
                reason: "too many".into(),
            },
            t(10),
            &mut fleet,
        )
        .unwrap();
    assert!(matches!(too_many, MaintenanceVerdict::Denied { .. }));

    // Run the approved drain to completion: host 0 empties out.
    sm.advance_migrations(t(10) + SimDuration::from_hours(1), &mut fleet);
    sm.advance_migrations(t(10) + SimDuration::from_hours(2), &mut fleet);
    assert!(sm.shards_on("svc", HostId(0)).is_empty());
    assert_eq!(sm.host_state(HostId(0)), Some(HostState::Draining));
    sm.reactivate_host(HostId(0), t(10_000)).unwrap();
    assert_eq!(sm.host_state(HostId(0)), Some(HostState::Alive));
}

#[test]
fn replicated_app_spreads_and_survives_rack_failure() {
    let mut sm = SmServer::standalone(SmConfig::default());
    sm.register_app(
        AppSpec::primary_only("svc", 1_000)
            .with_replication(scalewall::shard_manager::ReplicationMode::SecondaryOnly {
                replicas: 2,
            })
            .with_spread(scalewall::shard_manager::SpreadDomain::Rack),
    )
    .unwrap();
    let mut fleet = fleet(&mut sm, 8); // racks 0..4, 2 hosts each
    sm.allocate_shard("svc", ShardId(0), 5.0, t(0), &mut fleet)
        .unwrap();
    let replicas: Vec<HostId> = sm
        .replicas_of("svc", ShardId(0))
        .unwrap()
        .iter()
        .map(|&(h, _)| h)
        .collect();
    assert_eq!(replicas.len(), 2);
    let racks: std::collections::HashSet<u32> = replicas
        .iter()
        .map(|h| sm.host_info(*h).unwrap().rack.0)
        .collect();
    assert_eq!(racks.len(), 2, "replicas on distinct racks");

    // Kill one replica's host: the surviving replica still exists, and a
    // failover replaces the dead one on yet another feasible host.
    let dead = replicas[0];
    fleet.down.insert(dead);
    sm.host_failed(dead, t(100), &mut fleet).unwrap();
    sm.advance_migrations(t(100) + SimDuration::from_hours(1), &mut fleet);
    let after: Vec<HostId> = sm
        .replicas_of("svc", ShardId(0))
        .unwrap()
        .iter()
        .map(|&(h, _)| h)
        .collect();
    assert_eq!(after.len(), 2);
    assert!(!after.contains(&dead));
    assert!(after.contains(&replicas[1]), "survivor kept");
}

#[test]
fn discovery_staleness_is_bounded_and_monotone() {
    // A client never sees assignments out of order: once it observes
    // update N, it never resolves to update N-1 again.
    let store = Arc::new(RwLock::new(scalewall::discovery::MappingStore::new()));
    let model = DelayModel::new(DelayModelConfig::default());
    let client = DiscoveryClient::new(store.clone(), model, 77);
    let key = ShardKey::new("svc", 5);
    let mut rng = SimRng::new(5);
    let mut publish_time = SimTime::ZERO;
    let mut last_seen: Option<u64> = None;
    let mut observe = SimTime::ZERO;
    for host in 0..20u64 {
        publish_time += SimDuration::from_secs(60 + rng.below(600));
        store.write().publish(key.clone(), Some(host), publish_time);
        // Observe at several instants between publishes.
        for _ in 0..5 {
            observe = observe.max(publish_time) + SimDuration::from_secs(rng.below(30) + 1);
            if let Some(update) = client.resolve(&key, observe) {
                let seen = update.host.unwrap();
                if let Some(prev) = last_seen {
                    assert!(seen >= prev, "client went backwards: {prev} → {seen}");
                }
                last_seen = Some(seen);
            }
        }
    }
}
