//! Correlated-fault scenario suite (ISSUE 2 satellite 1).
//!
//! Each test runs one named fault scenario through the full operational
//! experiment engine and asserts the three contract points:
//!
//! (a) **replayability** — the same seed produces bit-identical stats
//!     (every test prints its seed, so a failure can be replayed);
//! (b) **bounded damage** — the retried success ratio stays above the
//!     analytic lower bound `1 - disrupted_fraction` (even if *every*
//!     query issued while any fault window was open had failed, success
//!     could not drop below it; a small slack absorbs edge effects of
//!     recovery lagging past the repair instant);
//! (c) **invariant preservation** — zero same-table shard collisions
//!     (§IV-A) after recovery: neither failover retargeting nor drain
//!     storms may stack two shards of one table on a host.

use scalewall::cluster::deployment::DeploymentConfig;
use scalewall::cluster::experiment::{Experiment, ExperimentConfig, ExperimentStats};
use scalewall::cluster::fault::{FaultKind, FaultScript};
use scalewall::cluster::workload::WorkloadConfig;
use scalewall::sim::{SimDuration, SimTime};
use scalewall::zk::ZkReplicationConfig;

const DURATION: SimDuration = SimDuration::from_hours(12);

fn hours(h: u64) -> SimTime {
    SimTime::from_secs(h * 3_600)
}

/// A 3-region, 24-hosts-per-region (4 racks of 6) deployment with all
/// background noise disabled, so the only disturbance is the script.
/// With `replicated` set, each region's shard manager runs against a
/// 3-node coordination ensemble spread across the fault regions (the
/// ensemble's initial leader homed in the owning region), so coordinator
/// faults hit a real replicated plane instead of an unkillable store.
fn run_scenario_with(seed: u64, faults: FaultScript, replicated: bool) -> ExperimentStats {
    let mut deployment = DeploymentConfig {
        regions: 3,
        hosts_per_region: 24,
        racks_per_region: 4,
        max_shards: 100_000,
        ..Default::default()
    };
    if replicated {
        deployment.sm.replication = Some(ZkReplicationConfig::default());
    }
    let config = ExperimentConfig {
        deployment,
        workload: WorkloadConfig {
            tables: 8,
            ..Default::default()
        },
        duration: DURATION,
        query_rate: 0.05,
        rows_per_table: 150,
        host_mtbf: SimDuration::from_days(3_650),
        drains_per_day: 0.0,
        faults,
        seed,
        ..Default::default()
    };
    Experiment::new(config).run()
}

/// Every observable stat in exactly comparable form.
fn fingerprint(stats: &ExperimentStats) -> Vec<u64> {
    let mut f = vec![
        stats.queries_ok,
        stats.queries_failed,
        stats.latency.count(),
        stats.latency.mean().to_bits(),
        stats.latency.quantile(0.5).to_bits(),
        stats.latency.quantile(0.99).to_bits(),
        stats.drains_requested,
        stats.drains_denied,
        stats.fault_injections,
        stats.fault_repairs,
        stats.failover_migrations,
        stats.region_failovers,
        stats.same_table_collisions,
        stats.population_fingerprint,
        stats.zk_failovers,
        stats.zk_session_moves,
    ];
    f.extend(stats.migrations_per_day.iter().copied());
    f.extend(stats.repairs_per_day.iter().copied());
    f.extend(stats.final_hotness.iter().map(|&h| h as u64));
    f
}

/// Run the scenario twice and enforce contract points (a)–(c); returns
/// the stats for scenario-specific assertions.
fn check_scenario(name: &str, seed: u64, script: FaultScript) -> ExperimentStats {
    check_scenario_with(name, seed, script, false)
}

fn check_scenario_with(
    name: &str,
    seed: u64,
    script: FaultScript,
    replicated: bool,
) -> ExperimentStats {
    println!("scenario `{name}` seed {seed:#x} — replay with run_scenario_with({seed:#x}, ...)");
    let stats = run_scenario_with(seed, script.clone(), replicated);
    let replay = run_scenario_with(seed, script.clone(), replicated);
    assert_eq!(
        fingerprint(&stats),
        fingerprint(&replay),
        "`{name}` did not replay bit-identically from seed {seed:#x}"
    );
    let floor = 1.0 - script.disrupted_fraction(DURATION) - 0.02;
    assert!(
        stats.success_ratio() >= floor,
        "`{name}` success {:.4} below analytic floor {floor:.4} (ok {}, failed {})",
        stats.success_ratio(),
        stats.queries_ok,
        stats.queries_failed
    );
    assert_eq!(
        stats.same_table_collisions, 0,
        "`{name}` left same-table shard collisions after recovery"
    );
    let total = stats.queries_ok + stats.queries_failed;
    assert!(total > 1_000, "`{name}` ran too few queries: {total}");
    stats
}

/// A whole rack of region 0 goes dark for two hours. Rack-spread
/// placement keeps per-table loss bounded, so every lost shard finds a
/// collision-free failover target and traffic barely notices.
#[test]
fn rack_outage_fails_over_and_recovers() {
    let script = FaultScript::new().with(
        FaultKind::RackOutage { region: 0, rack: 1 },
        hours(2),
        SimDuration::from_hours(2),
    );
    let stats = check_scenario("rack_outage", 0xFA017_01, script);
    assert_eq!(stats.fault_injections, 1);
    assert_eq!(stats.fault_repairs, 1);
    assert!(
        stats.failover_migrations > 0,
        "a rack outage must trigger failover migrations"
    );
}

/// Region 1 becomes unavailable outright; its clients' queries must be
/// served by the surviving regions for the whole window.
#[test]
fn region_outage_reroutes_to_surviving_regions() {
    let script = FaultScript::new().with(
        FaultKind::RegionOutage { region: 1 },
        hours(2),
        SimDuration::from_hours(2),
    );
    let stats = check_scenario("region_outage", 0xFA017_02, script);
    assert_eq!(stats.fault_injections, 1);
    assert_eq!(stats.fault_repairs, 1);
    // No hosts died: nothing to fail over at the shard level, the proxy
    // absorbs the outage entirely.
    assert!(
        stats.success_ratio() > 0.99,
        "region failover should be near-lossless, got {:.4}",
        stats.success_ratio()
    );
}

/// Region 0 goes down while the 0↔1 link is also cut: region-0 clients
/// fail over, find their first-choice fallback (region 1) unreachable,
/// and must retry around the partition to region 2 (§IV-D).
#[test]
fn interregion_partition_reroutes_around_cut() {
    let script = FaultScript::new()
        .with(
            FaultKind::RegionOutage { region: 0 },
            hours(2),
            SimDuration::from_hours(2),
        )
        .with(
            FaultKind::RegionPartition { a: 0, b: 1 },
            hours(2),
            SimDuration::from_hours(2),
        );
    let stats = check_scenario("interregion_partition", 0xFA017_03, script);
    assert_eq!(stats.fault_injections, 2);
    assert_eq!(stats.fault_repairs, 2);
    assert!(
        stats.region_failovers > 0,
        "the proxy must have retried across the partition at least once"
    );
}

/// Four concurrent drain requests hit the automation engine at once. The
/// §IV-G safety checks bound simultaneous unavailability: at 24 hosts
/// per region the 10% budget admits two drains and denies the rest.
#[test]
fn drain_storm_is_bounded_by_safety_checks() {
    let script = FaultScript::new().with(
        FaultKind::DrainStorm {
            region: 0,
            drains: 4,
        },
        hours(2),
        SimDuration::from_hours(2),
    );
    let stats = check_scenario("drain_storm", 0xFA017_04, script);
    assert_eq!(stats.drains_requested, 4);
    assert!(
        stats.drains_denied >= 1,
        "the unavailability budget must deny part of the storm"
    );
    assert!(
        stats.drains_requested - stats.drains_denied >= 1,
        "at least one drain fits the budget and proceeds"
    );
    // Drains migrate shards gracefully — client-visible damage ~zero.
    assert!(stats.success_ratio() > 0.99);
}

/// Compound scenario: a drain storm in region 2 while region 1 is down
/// and partitioned from region 0 — region-1 traffic must thread through
/// the partition into a region that is simultaneously absorbing drains.
#[test]
fn partition_during_drain_storm_compound() {
    let script = FaultScript::new()
        .with(
            FaultKind::DrainStorm {
                region: 2,
                drains: 3,
            },
            SimTime::from_secs(90 * 60),
            SimDuration::from_hours(3),
        )
        .with(
            FaultKind::RegionOutage { region: 1 },
            hours(2),
            SimDuration::from_mins(90),
        )
        .with(
            FaultKind::RegionPartition { a: 1, b: 0 },
            hours(2),
            SimDuration::from_mins(90),
        );
    let stats = check_scenario("partition_during_drain", 0xFA017_05, script);
    assert_eq!(stats.fault_injections, 3);
    assert_eq!(stats.fault_repairs, 3);
    assert_eq!(stats.drains_requested, 3);
    assert!(
        stats.region_failovers > 0,
        "region-1 clients must have failed over around the cut"
    );
}

/// **Coordinator-region outage** (fig2b-shaped, replicated plane): region
/// 0 dies for two hours with the coordination leader of its own ensemble
/// homed *inside* the dead region. The ensemble must fail over
/// automatically (lease expiry → deterministic election → `TouchSessions`),
/// traffic reroutes as in the plain region-outage scenario, no host is
/// spuriously expired during the leaderless window, and the whole run —
/// including failover counts — replays bit-identically.
#[test]
fn coordinator_region_outage_fails_over_automatically() {
    let script = FaultScript::new().with(
        FaultKind::RegionOutage { region: 0 },
        hours(2),
        SimDuration::from_hours(2),
    );
    let stats = check_scenario_with("coordinator_region_outage", 0xFA017_06, script, true);
    assert_eq!(stats.fault_injections, 1);
    assert_eq!(stats.fault_repairs, 1);
    assert!(
        stats.zk_failovers >= 1,
        "killing the leader's home region must force a coordination failover"
    );
    assert!(
        stats.zk_session_moves > 0,
        "post-failover heartbeats must absorb SessionMoved reconnects"
    );
    // Coordination loss must not translate into query loss beyond the
    // routed-around region outage itself.
    assert!(
        stats.success_ratio() > 0.99,
        "coordination failover should be invisible to traffic, got {:.4}",
        stats.success_ratio()
    );
    // No host was spuriously expired during the leaderless window: zero
    // failover migrations means no session was declared dead.
    assert_eq!(
        stats.failover_migrations, 0,
        "degraded-but-live: the leaderless window must not expire live hosts"
    );
}

/// **ZK leader partition during a drain storm** (replicated plane): a
/// drain storm lands in region 0 and, mid-storm, region 0 is partitioned
/// from *both* other regions — isolating the region-0 ensemble's own
/// leader on the minority side. The majority side (regions 1+2) must
/// elect a new leader within one lease, the shard manager's sessions
/// must ride the failover as `SessionMoved` reconnects rather than
/// expiries, the storm's admitted drains must complete, and the whole
/// compound run must replay bit-identically.
#[test]
fn zk_leader_partition_during_drain_storm() {
    let script = FaultScript::new()
        .with(
            FaultKind::DrainStorm {
                region: 0,
                drains: 3,
            },
            hours(1),
            SimDuration::from_hours(3),
        )
        .with(
            FaultKind::RegionPartition { a: 0, b: 1 },
            hours(2),
            SimDuration::from_mins(90),
        )
        .with(
            FaultKind::RegionPartition { a: 0, b: 2 },
            hours(2),
            SimDuration::from_mins(90),
        );
    let stats = check_scenario_with("zk_leader_partition_during_drain", 0xFA017_08, script, true);
    assert_eq!(stats.fault_injections, 3);
    assert_eq!(stats.fault_repairs, 3);
    assert_eq!(stats.drains_requested, 3);
    assert!(
        stats.zk_failovers >= 1,
        "isolating the leader from the majority must force an election, got {}",
        stats.zk_failovers
    );
    assert!(
        stats.zk_session_moves > 0,
        "post-failover heartbeats must absorb SessionMoved reconnects"
    );
    // Bounded reconnect churn: every live session re-handshakes at most
    // once per election (one SessionMoved refusal per session per
    // epoch), so the storm cannot amplify session movement. 24 hosts
    // per region plus the manager's own bookkeeping sessions, times the
    // elections this schedule produces, stays well under this pin.
    assert!(
        stats.zk_session_moves <= 64 * stats.zk_failovers.max(1),
        "session moves ({}) exploded past one reconnect per session per election ({})",
        stats.zk_session_moves,
        stats.zk_failovers
    );
    // No host was spuriously expired: the leaderless window and the
    // partition must degrade, not kill sessions into failover churn.
    assert_eq!(
        stats.failover_migrations, 0,
        "degraded-but-live: the partitioned window must not expire live hosts"
    );
}

/// **SM failover racing client watches** (ISSUE 10 satellite): a drain
/// storm keeps region 1's shard manager busy mutating placement — every
/// step fanning watch notifications out to clients — when the region's
/// own coordination replicas crash mid-storm (`ZkNodeCrash`). The
/// ensemble election races the in-flight drain migrations and the
/// clients' watch re-registrations. Contract: the failover shows up as
/// bounded `SessionMoved` reconnect churn (one re-handshake per session
/// per election), no live session is expired into spurious failover
/// migrations, the storm's admitted drains still complete, and the
/// whole race — election order, watch delivery, migration schedule —
/// replays bit-identically.
#[test]
fn sm_failover_races_client_watches() {
    let script = FaultScript::new()
        .with(
            FaultKind::DrainStorm {
                region: 1,
                drains: 3,
            },
            hours(2),
            SimDuration::from_hours(3),
        )
        .with(
            FaultKind::ZkNodeCrash { region: 1 },
            SimTime::from_secs(150 * 60),
            SimDuration::from_hours(1),
        );
    let stats = check_scenario_with("sm_failover_races_client_watches", 0xFA017_0A, script, true);
    assert_eq!(stats.fault_injections, 2);
    assert_eq!(stats.fault_repairs, 2);
    assert_eq!(stats.drains_requested, 3);
    assert!(
        stats.drains_requested - stats.drains_denied >= 1,
        "the storm's admitted drains proceed through the failover"
    );
    assert!(
        stats.zk_failovers >= 1,
        "crashing region 1's replicas mid-storm must force an election, got {}",
        stats.zk_failovers
    );
    assert!(
        stats.zk_session_moves > 0,
        "watch clients must re-handshake via SessionMoved after failover"
    );
    // Bounded churn: at most one reconnect per session per election
    // (24 hosts + SM bookkeeping sessions per region, same bound as the
    // leader-partition scenario).
    assert!(
        stats.zk_session_moves <= 64 * stats.zk_failovers.max(1),
        "session moves ({}) exploded past one reconnect per session per election ({})",
        stats.zk_session_moves,
        stats.zk_failovers
    );
    // Zero spurious expiries: the election racing the drain's watch
    // traffic must not declare any live host dead.
    assert_eq!(
        stats.failover_migrations, 0,
        "failover racing client watches must not expire live sessions"
    );
    // Graceful drains + coordinator-only fault: client damage ~zero.
    assert!(
        stats.success_ratio() > 0.999,
        "the race must stay invisible to traffic, got {:.4}",
        stats.success_ratio()
    );
}

/// The coordinator's rack alone dies (`ZkNodeCrash`): every replica
/// homed in region 1 crashes, but application hosts are untouched.
/// Ensembles whose leader lived there fail over; traffic never notices.
#[test]
fn zk_node_crash_is_invisible_to_traffic() {
    let script = FaultScript::new().with(
        FaultKind::ZkNodeCrash { region: 1 },
        hours(3),
        SimDuration::from_hours(1),
    );
    let stats = check_scenario_with("zk_node_crash", 0xFA017_07, script, true);
    assert!(
        stats.zk_failovers >= 1,
        "region 1's own ensemble lost its leader and must re-elect"
    );
    assert!(
        stats.success_ratio() > 0.999,
        "a coordinator-only fault must not fail queries, got {:.4}",
        stats.success_ratio()
    );
    assert_eq!(stats.failover_migrations, 0);
}
