//! Integration: dynamic re-partitioning and shard migration under live
//! traffic — the operations §IV-B and §IV-E describe — with exact-result
//! verification throughout.

use scalewall::cluster::deployment::{Deployment, DeploymentConfig, APP};
use scalewall::cluster::driver::{run_query, QueryOptions};
use scalewall::cluster::net::{NetModel, NetModelConfig};
use scalewall::cubrick::catalog::RowMapping;
use scalewall::cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall::cubrick::query::parse_query;
use scalewall::cubrick::schema::SchemaBuilder;
use scalewall::cubrick::sharding::ShardMapping;
use scalewall::cubrick::value::{Row, Value};
use scalewall::shard_manager::{MigrationCause, ShardId};
use scalewall::sim::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

fn schema() -> Arc<scalewall::cubrick::schema::Schema> {
    Arc::new(
        SchemaBuilder::new()
            .int_dim("k", 0, 10_000, 250)
            .metric("v")
            .build()
            .unwrap(),
    )
}

fn build(seed: u64, partitions: u32, rows: i64) -> Deployment {
    let mut dep = Deployment::new(DeploymentConfig {
        regions: 3,
        hosts_per_region: 24,
        max_shards: 10_000,
        seed,
        ..Default::default()
    });
    dep.create_table(
        "t",
        schema(),
        partitions,
        RowMapping::Hash,
        ShardMapping::Monotonic,
        SimTime::ZERO,
    )
    .unwrap();
    let data: Vec<Row> = (0..rows)
        .map(|k| Row::new(vec![Value::Int(k % 10_000)], vec![k as f64]))
        .collect();
    dep.ingest("t", &data).unwrap();
    dep
}

fn count_star(
    dep: &mut Deployment,
    proxy: &mut CubrickProxy,
    net: &NetModel,
    now: SimTime,
    rng: &mut SimRng,
) -> Option<f64> {
    let q = parse_query("select count(*) from t").unwrap();
    let outcome = run_query(dep, proxy, net, &q, &QueryOptions::default(), now, rng);
    outcome.output.and_then(|o| o.scalar())
}

#[test]
fn repartition_preserves_results_and_updates_proxy_cache() {
    let mut dep = build(11, 8, 4_000);
    let mut proxy = CubrickProxy::new(ProxyConfig::default());
    let net = NetModel::new(NetModelConfig {
        server_failure_probability: 0.0,
        ..Default::default()
    });
    let mut rng = SimRng::new(11);
    let mut now = SimTime::from_secs(3_600);

    assert_eq!(
        count_star(&mut dep, &mut proxy, &net, now, &mut rng),
        Some(4_000.0)
    );
    assert_eq!(proxy.cached_partitions("t"), Some(8));

    // Grow 8 → 16 partitions.
    let shuffled = dep.repartition("t", 16, now).unwrap();
    assert_eq!(shuffled, 4_000);
    now += SimDuration::from_mins(5); // let discovery propagate new shards

    assert_eq!(
        count_star(&mut dep, &mut proxy, &net, now, &mut rng),
        Some(4_000.0)
    );
    // Result metadata refreshed the cache to the new count (§IV-C).
    assert_eq!(proxy.cached_partitions("t"), Some(16));

    // Shrink back down.
    dep.repartition("t", 8, now).unwrap();
    now += SimDuration::from_mins(5);
    assert_eq!(
        count_star(&mut dep, &mut proxy, &net, now, &mut rng),
        Some(4_000.0)
    );
    assert_eq!(proxy.cached_partitions("t"), Some(8));
}

#[test]
fn graceful_migration_under_traffic_never_disrupts() {
    let mut dep = build(12, 4, 2_000);
    // No retries: any disruption would be visible as a failure.
    let mut proxy = CubrickProxy::new(ProxyConfig {
        max_retries: 0,
        ..Default::default()
    });
    let net = NetModel::new(NetModelConfig {
        server_failure_probability: 0.0,
        ..Default::default()
    });
    let mut rng = SimRng::new(12);
    let mut now = SimTime::from_secs(3_600);

    let shard = dep.catalog.read().shards_of_table("t").unwrap()[0];
    let from = dep.regions[0].authoritative_host(shard).unwrap();
    let to = dep.regions[0]
        .nodes
        .hosts()
        .find(|&h| h != from && dep.regions[0].sm.shards_on(APP, h).is_empty())
        .unwrap();
    {
        let region = &mut dep.regions[0];
        region
            .sm
            .begin_migration(
                APP,
                ShardId(shard),
                to,
                true,
                MigrationCause::Manual,
                now,
                &mut region.nodes,
            )
            .unwrap();
    }
    for step in 0..600u64 {
        dep.tick(now);
        let result = count_star(&mut dep, &mut proxy, &net, now, &mut rng);
        assert_eq!(result, Some(2_000.0), "step {step}");
        now += SimDuration::from_millis(200);
    }
    // The migration completed along the way.
    assert_eq!(dep.regions[0].authoritative_host(shard), Some(to));
    assert!(dep.regions[0]
        .sm
        .active_migration(APP, ShardId(shard))
        .is_none());
}

#[test]
fn plain_migration_has_visible_error_window_masked_by_proxy_retries() {
    // Same scenario, plain migration. Without retries some queries fail;
    // with retries (the production configuration) none do.
    for (retries, expect_failures) in [(0u32, true), (2u32, false)] {
        let mut dep = build(13, 4, 1_000);
        let mut proxy = CubrickProxy::new(ProxyConfig {
            max_retries: retries,
            ..Default::default()
        });
        let net = NetModel::new(NetModelConfig {
            server_failure_probability: 0.0,
            ..Default::default()
        });
        let mut rng = SimRng::new(13);
        let mut now = SimTime::from_secs(3_600);

        let shard = dep.catalog.read().shards_of_table("t").unwrap()[0];
        let from = dep.regions[0].authoritative_host(shard).unwrap();
        let to = dep.regions[0]
            .nodes
            .hosts()
            .find(|&h| h != from && dep.regions[0].sm.shards_on(APP, h).is_empty())
            .unwrap();
        {
            let region = &mut dep.regions[0];
            region
                .sm
                .begin_migration(
                    APP,
                    ShardId(shard),
                    to,
                    false, // plain
                    MigrationCause::Manual,
                    now,
                    &mut region.nodes,
                )
                .unwrap();
        }
        let mut failures = 0u64;
        for _ in 0..600u64 {
            dep.tick(now);
            if count_star(&mut dep, &mut proxy, &net, now, &mut rng).is_none() {
                failures += 1;
            }
            now += SimDuration::from_millis(100);
        }
        if expect_failures {
            assert!(failures > 0, "plain migration without retries must disrupt");
        } else {
            assert_eq!(failures, 0, "proxy retries mask the window");
        }
    }
}

#[test]
fn migration_collision_veto_respected_end_to_end() {
    let mut dep = build(14, 4, 100);
    let shards = dep.catalog.read().shards_of_table("t").unwrap();
    let region = &mut dep.regions[0];
    let from = region.sm.host_of(APP, ShardId(shards[0])).unwrap();
    // Target: a host that owns a *different* shard of the same table.
    let target = region
        .sm
        .host_of(APP, ShardId(shards[1]))
        .filter(|&h| h != from)
        .expect("different owner");
    let now = SimTime::from_secs(100);
    let err = region
        .sm
        .begin_migration(
            APP,
            ShardId(shards[0]),
            target,
            true,
            MigrationCause::Manual,
            now,
            &mut region.nodes,
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            scalewall::shard_manager::SmError::AllTargetsVetoed { .. }
        ),
        "{err:?}"
    );
}
