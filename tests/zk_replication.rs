//! Replicated coordination plane: linearizability vs a single-store
//! oracle (ISSUE 8 tentpole acceptance).
//!
//! The ensemble's commit rule is synchronous — an op is acknowledged iff
//! it was applied, through the shared `ZkStore::apply` path, on the
//! leader and every reachable follower while the leader held a strict
//! majority. Under that rule the acked-op history *is* a serial history,
//! so the linearizability check collapses to an equality check: mirror
//! every acked op (and every election-time `TouchSessions`) into one
//! plain `ZkStore` at the same sim-time, and both the per-op responses
//! and the final `state_digest` must match exactly — across every up
//! replica, under arbitrary crash/partition/repair schedules.
//!
//! Targeted tests pin the individual failover behaviours the property
//! exercises in bulk: no acked write lost across a leader crash, watch
//! redelivery from a replicated `pending_events`, minority/majority
//! partitions, snapshot-install catchup, and `SessionMoved` fencing.

use scalewall::sim::prop::{self, gen};
use scalewall::sim::{SimDuration, SimRng, SimTime};
use scalewall::zk::{
    NodeKind, SessionId, WatchKind, ZkClient, ZkEnsemble, ZkError, ZkOp, ZkReplicationConfig,
    ZkResp, ZkStore,
};

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

// --------------------------------------------------------------- property

/// One step of a replication schedule: advance time, maybe flip a fault,
/// then submit one op through the client.
#[derive(Debug)]
struct Step {
    advance_ms: u64,
    fault: Option<Fault>,
    op: OpKind,
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    Crash(u32),
    Restore(u32),
    Cut(u32, u32),
    Heal(u32, u32),
}

/// Op templates; concrete paths/sessions are resolved against the run's
/// live state so ops hit a mix of valid and invalid targets.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    CreateEphemeral,
    CreatePersistent,
    SetData,
    Delete,
    NewSession,
    Refresh,
    CloseSession,
    Watch,
    Drain,
    Expire,
}

fn gen_step(rng: &mut SimRng) -> Step {
    let fault = if rng.below(100) < 18 {
        Some(match rng.below(4) {
            0 => Fault::Crash(rng.below(3) as u32),
            1 => Fault::Restore(rng.below(3) as u32),
            2 => {
                let pairs = [(0, 1), (0, 2), (1, 2)];
                let &(a, b) = rng.pick(&pairs);
                Fault::Cut(a, b)
            }
            _ => {
                let pairs = [(0, 1), (0, 2), (1, 2)];
                let &(a, b) = rng.pick(&pairs);
                Fault::Heal(a, b)
            }
        })
    } else {
        None
    };
    let op = *rng.pick(&[
        OpKind::CreateEphemeral,
        OpKind::CreatePersistent,
        OpKind::SetData,
        OpKind::SetData,
        OpKind::Delete,
        OpKind::NewSession,
        OpKind::Refresh,
        OpKind::Refresh,
        OpKind::CloseSession,
        OpKind::Watch,
        OpKind::Drain,
        OpKind::Expire,
    ]);
    Step {
        advance_ms: rng.range(50, 4_000),
        fault,
        op,
    }
}

/// Run one schedule against ensemble + oracle; panics on any divergence.
fn run_schedule(steps: &[Step]) {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    let mut oracle = ZkStore::new(cfg.session);
    // Deterministic path/session *selection* stream — separate from the
    // schedule generator so a shrunk schedule replays identically.
    let mut sel = SimRng::new(0x0f_ace).fork(0x51);

    let mut now_ms = 0u64;
    let mut sessions: Vec<SessionId> = Vec::new();
    let paths = ["/svc/a", "/svc/b", "/svc/c", "/svc/d", "/svc/e"];

    // Seed the namespace through the replicated path so the oracle and
    // the ensemble share it.
    let seed_op = ZkOp::CreateRecursive {
        path: "/svc".into(),
        data: Vec::new(),
        kind: NodeKind::Persistent,
        session: None,
    };
    let r = client.submit(&mut ens, seed_op.clone(), t(0)).unwrap();
    assert_eq!(r, oracle.apply(&seed_op, t(0)).unwrap());

    for step in steps {
        now_ms += step.advance_ms;
        let now = SimTime::ZERO + SimDuration::from_millis(now_ms);
        if let Some(fault) = step.fault {
            match fault {
                Fault::Crash(id) => ens.crash_replica(id),
                Fault::Restore(id) => ens.restore_replica(id),
                Fault::Cut(a, b) => ens.cut_regions(a, b),
                Fault::Heal(a, b) => ens.heal_regions(a, b),
            }
        }
        if ens.tick(now).is_some() {
            // The new leader committed `TouchSessions` at `now`; mirror
            // it so the oracle's expiry outcomes stay aligned.
            let _ = oracle.apply(&ZkOp::TouchSessions, now);
        }
        let mut path = || (*sel.pick(&paths)).to_string();
        let session = |sel: &mut SimRng, sessions: &[SessionId]| {
            if sessions.is_empty() || sel.below(8) == 0 {
                SessionId(sel.below(64)) // sometimes bogus on purpose
            } else {
                *sel.pick(sessions)
            }
        };
        let op = match step.op {
            OpKind::CreateEphemeral => ZkOp::Create {
                path: path(),
                data: vec![gen::any_u8(&mut sel)],
                kind: NodeKind::Ephemeral,
                session: Some(session(&mut sel, &sessions)),
            },
            OpKind::CreatePersistent => ZkOp::Create {
                path: path(),
                data: Vec::new(),
                kind: NodeKind::Persistent,
                session: None,
            },
            OpKind::SetData => ZkOp::SetData {
                path: path(),
                data: vec![gen::any_u8(&mut sel), gen::any_u8(&mut sel)],
                expected_version: if sel.below(4) == 0 { Some(sel.below(3)) } else { None },
            },
            OpKind::Delete => ZkOp::Delete {
                path: path(),
                expected_version: None,
            },
            OpKind::NewSession => ZkOp::CreateSession,
            OpKind::Refresh => ZkOp::RefreshSession {
                session: session(&mut sel, &sessions),
            },
            OpKind::CloseSession => ZkOp::CloseSession {
                session: session(&mut sel, &sessions),
            },
            OpKind::Watch => ZkOp::Watch {
                path: path(),
                kind: if sel.below(2) == 0 { WatchKind::Node } else { WatchKind::Children },
                token: sel.below(1 << 20),
            },
            OpKind::Drain => ZkOp::DrainEvents,
            OpKind::Expire => ZkOp::ExpireSessions,
        };
        match client.submit(&mut ens, op.clone(), now) {
            // Not committed: the plane was leaderless/minority for the
            // whole retry budget, or the session was fenced right at the
            // budget edge. Nothing to mirror.
            Err(ZkError::NotLeader { .. }) | Err(ZkError::SessionMoved { .. }) => {}
            // Committed — successfully or as a committed refusal
            // (BadVersion, NoNode, ...). The oracle must agree exactly.
            outcome => {
                let mirrored = oracle.apply(&op, now);
                assert_eq!(
                    outcome, mirrored,
                    "acked response diverged from oracle for {op:?} at {now_ms}ms"
                );
                if let Ok(ZkResp::Session(sid)) = &outcome {
                    sessions.push(*sid);
                }
                if let Ok(ZkResp::Sessions(dead)) = &outcome {
                    sessions.retain(|s| !dead.contains(s));
                }
                if let (ZkOp::CloseSession { session }, Ok(_)) = (&op, &outcome) {
                    sessions.retain(|s| s != session);
                }
            }
        }
    }

    // Quiesce: repair everything and let anti-entropy converge the
    // ensemble, mirroring any final election's TouchSessions.
    for id in 0..3 {
        ens.restore_replica(id);
    }
    for (a, b) in [(0, 1), (0, 2), (1, 2)] {
        ens.heal_regions(a, b);
    }
    let end = SimTime::ZERO + SimDuration::from_millis(now_ms) + SimDuration::from_secs(30);
    if ens.tick(end).is_some() {
        let _ = oracle.apply(&ZkOp::TouchSessions, end);
    }
    assert!(ens.leader().is_some(), "fully-healed ensemble must have a leader");
    let want = oracle.state_digest();
    for id in 0..3 {
        assert_eq!(
            ens.replica_digest(id),
            want,
            "replica {id} diverged from the single-store oracle after quiescence"
        );
    }
}

#[test]
fn prop_replicated_plane_matches_single_store_oracle() {
    prop::check_n(
        "zk_replication_oracle",
        48,
        |rng| gen::vec_with(rng, 10, 60, gen_step),
        |steps| run_schedule(steps),
    );
}

// ---------------------------------------------------------------- targeted

fn create(path: &str) -> ZkOp {
    ZkOp::Create {
        path: path.into(),
        data: Vec::new(),
        kind: NodeKind::Persistent,
        session: None,
    }
}

/// No acked write is lost across a leader crash: everything the old
/// leader acknowledged is present on the post-failover leader.
#[test]
fn acked_writes_survive_leader_crash() {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    for i in 0..10 {
        client
            .submit(&mut ens, create(&format!("/n{i}")), t(1))
            .unwrap();
    }
    ens.crash_replica(0);
    let new = ens.tick(t(30)).expect("failover");
    let store = ens.replica_store(new).unwrap();
    for i in 0..10 {
        assert!(store.exists(&format!("/n{i}")), "acked /n{i} lost in failover");
    }
}

/// Watches live in the replicated state: an event fired just before the
/// leader dies is still delivered by the post-failover leader.
#[test]
fn watch_events_are_redelivered_after_failover() {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    client.submit(&mut ens, create("/w"), t(1)).unwrap();
    client
        .submit(
            &mut ens,
            ZkOp::Watch {
                path: "/w".into(),
                kind: WatchKind::Node,
                token: 7,
            },
            t(1),
        )
        .unwrap();
    client
        .submit(
            &mut ens,
            ZkOp::Delete {
                path: "/w".into(),
                expected_version: None,
            },
            t(1),
        )
        .unwrap();
    // The deletion fired the watch into every replica's pending queue;
    // the leader dies before anyone drains it.
    ens.crash_replica(0);
    ens.tick(t(30)).expect("failover");
    let evs = match client.submit(&mut ens, ZkOp::DrainEvents, t(31)).unwrap() {
        ZkResp::Events(evs) => evs,
        other => panic!("{other:?}"),
    };
    assert_eq!(evs.len(), 1, "pre-crash watch event must survive failover");
    assert_eq!(evs[0].path, "/w");
    assert_eq!(evs[0].token, 7);
}

/// A partition that leaves the leader in the minority: the majority side
/// elects, commits, and the healed minority catches back up.
#[test]
fn majority_side_wins_partition_and_minority_catches_up() {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    client.submit(&mut ens, create("/before"), t(1)).unwrap();
    // Isolate replica 0 (the leader) from both peers.
    ens.cut_regions(0, 1);
    ens.cut_regions(0, 2);
    let new = ens.tick(t(30)).expect("majority-side election");
    assert_eq!(new, 1, "longest-log tie → lowest surviving id");
    client.submit(&mut ens, create("/during"), t(31)).unwrap();
    assert!(
        !ens.replica_store(0).unwrap().exists("/during"),
        "minority replica must not see uncommitted-for-it writes"
    );
    ens.heal_regions(0, 1);
    ens.heal_regions(0, 2);
    ens.tick(t(40));
    for id in 0..3 {
        assert_eq!(
            ens.replica_digest(id),
            ens.replica_digest(new),
            "replica {id} did not converge after heal"
        );
        assert!(ens.replica_store(id).unwrap().exists("/during"));
    }
}

/// While no side has a majority nothing commits anywhere — writes are
/// refused rather than acknowledged into a minority.
#[test]
fn leaderless_ensemble_refuses_rather_than_loses() {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    ens.crash_replica(1);
    ens.crash_replica(2);
    ens.tick(t(30));
    assert_eq!(ens.leader(), None, "no quorum anywhere → leaderless");
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    let err = client.submit(&mut ens, create("/lost"), t(31)).unwrap_err();
    assert!(matches!(err, ZkError::NotLeader { hint: None }));
    // Repair: the ensemble recovers and the write is accepted — exactly
    // once, with nothing phantom from the refused attempts.
    ens.restore_replica(1);
    ens.restore_replica(2);
    ens.tick(t(60)).expect("re-election after repair");
    client.submit(&mut ens, create("/lost"), t(61)).unwrap();
    for id in 0..3 {
        if ens.replica_up(id) {
            assert!(ens.replica_store(id).unwrap().exists("/lost"));
        }
    }
}

/// A follower that slept through more commits than the retained log
/// re-joins via snapshot install and ends bit-identical.
#[test]
fn repaired_follower_catches_up_via_snapshot() {
    let mut cfg = ZkReplicationConfig::default();
    cfg.max_log = 8;
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    ens.crash_replica(2);
    for i in 0..40 {
        client
            .submit(&mut ens, create(&format!("/deep{i}")), t(1))
            .unwrap();
    }
    ens.restore_replica(2);
    ens.tick(t(2));
    assert_eq!(ens.replica_digest(2), ens.replica_digest(0));
    assert!(
        ens.replica_log_start(2) > 1,
        "catchup past the truncation horizon must install a snapshot"
    );
}

/// Session fencing: after a failover the first op of each surviving
/// session absorbs exactly one `SessionMoved`, then proceeds.
#[test]
fn each_session_absorbs_one_session_moved_per_failover() {
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    let mut client = ZkClient::new(cfg.seed, cfg.retry);
    let mut sids = Vec::new();
    for _ in 0..3 {
        match client.submit(&mut ens, ZkOp::CreateSession, t(1)).unwrap() {
            ZkResp::Session(s) => sids.push(s),
            other => panic!("{other:?}"),
        }
    }
    ens.crash_replica(0);
    ens.tick(t(30)).expect("failover");
    for (i, sid) in sids.iter().enumerate() {
        let resp = client
            .submit(&mut ens, ZkOp::RefreshSession { session: *sid }, t(31))
            .unwrap();
        assert_eq!(resp, ZkResp::Refreshed(true));
        assert_eq!(
            client.session_moves,
            (i + 1) as u64,
            "exactly one SessionMoved per session per failover"
        );
    }
    // Second op on the same session in the same epoch: no new fencing.
    client
        .submit(&mut ens, ZkOp::RefreshSession { session: sids[0] }, t(32))
        .unwrap();
    assert_eq!(client.session_moves, sids.len() as u64);
}
