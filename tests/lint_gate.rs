//! Workspace determinism gate: run `scalewall-lint` over the live tree
//! and fail the build on any unsilenced violation.
//!
//! This is the machine check behind the replay contract: no sim-facing
//! code path may smuggle in wall-clock time (D1), hash-iteration order
//! (D2), private RNG seeds (D3), `unsafe` (D4), RNG stream-discipline
//! breaches (D5), lock-order hazards (D6), or panic surface on the
//! audited hot paths (D7). See DESIGN.md "Determinism invariants" and
//! "Semantic determinism invariants" for the rules and the pragma
//! escape hatch.

use std::path::Path;

use scalewall_lint::{json, lint_workspace, RuleId};

#[test]
fn workspace_has_zero_unsilenced_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan");

    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — did the walker break?",
        report.files_scanned
    );

    // Always print the allow inventory: every suppression in the tree,
    // with its reason, in one place.
    let inventory = report.pragma_inventory();
    println!("pragma allow inventory ({} entries):", inventory.len());
    for (path, p) in &inventory {
        let rules: Vec<String> = p.rules.iter().map(|r| r.to_string()).collect();
        println!(
            "  {}:{}: allow({}) -- {} [suppressed {}]",
            path,
            p.line,
            rules.join(","),
            p.reason,
            p.suppressed
        );
    }
    println!(
        "scanned {} files, {} suppressed by pragma",
        report.files_scanned,
        report.suppressed_count()
    );

    let mut rendered = String::new();
    for f in &report.files {
        for v in &f.violations {
            rendered.push_str(&format!("  {}:{}: {}: {}\n", f.path, v.line, v.rule, v.message));
        }
    }
    assert_eq!(
        report.violation_count(),
        0,
        "unsilenced determinism-lint violations:\n{rendered}"
    );

    // The gate covers all seven rule families, not just the v1 four:
    // a clean tree means clean under D1–D7 with the hot-path audit on.
    for rule in [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
    ] {
        let hits: Vec<_> = report
            .files
            .iter()
            .flat_map(|f| f.violations.iter().filter(|v| v.rule == rule))
            .collect();
        assert!(hits.is_empty(), "{rule} violations in live tree: {hits:?}");
    }
}

/// The machine-readable side of the gate: the workspace report must
/// serialize to a schema-valid `scalewall-lint/v2` document whose
/// summary counts agree with the in-memory report. `scripts/verify.sh`
/// runs the same emit + validate pair through the CLI.
#[test]
fn workspace_report_roundtrips_through_v2_json() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan");

    let text = json::to_json(&report);
    assert!(text.starts_with(&format!("{{\n  \"schema\": \"{}\"", json::SCHEMA)));

    let (violations, pragmas) = json::validate(&text).expect("schema-valid v2 report");
    assert_eq!(violations, report.violation_count() as u64);
    assert_eq!(pragmas as usize, report.pragma_inventory().len());
    assert_eq!(violations, 0, "validate must agree the tree is clean");
}
