//! Workspace determinism gate: run `scalewall-lint` over the live tree
//! and fail the build on any unsilenced violation.
//!
//! This is the machine check behind the replay contract: no sim-facing
//! code path may smuggle in wall-clock time (D1), hash-iteration order
//! (D2), private RNG seeds (D3), or `unsafe` (D4). See DESIGN.md
//! "Determinism invariants" for the rules and the pragma escape hatch.

use std::path::Path;

use scalewall_lint::lint_workspace;

#[test]
fn workspace_has_zero_unsilenced_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan");

    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — did the walker break?",
        report.files_scanned
    );

    // Always print the allow inventory: every suppression in the tree,
    // with its reason, in one place.
    let inventory = report.pragma_inventory();
    println!("pragma allow inventory ({} entries):", inventory.len());
    for (path, p) in &inventory {
        let rules: Vec<String> = p.rules.iter().map(|r| r.to_string()).collect();
        println!(
            "  {}:{}: allow({}) -- {} [suppressed {}]",
            path,
            p.line,
            rules.join(","),
            p.reason,
            p.suppressed
        );
    }
    println!(
        "scanned {} files, {} suppressed by pragma",
        report.files_scanned,
        report.suppressed_count()
    );

    let mut rendered = String::new();
    for f in &report.files {
        for v in &f.violations {
            rendered.push_str(&format!("  {}:{}: {}: {}\n", f.path, v.line, v.rule, v.message));
        }
    }
    assert_eq!(
        report.violation_count(),
        0,
        "unsilenced determinism-lint violations:\n{rendered}"
    );
}
