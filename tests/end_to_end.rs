//! End-to-end integration: full three-region cluster, real data, the
//! whole query path, and failure handling — spanning every crate.

use scalewall::cluster::deployment::{Deployment, DeploymentConfig, APP};
use scalewall::cluster::driver::{run_query, QueryOptions};
use scalewall::cluster::net::{NetModel, NetModelConfig};
use scalewall::cubrick::catalog::RowMapping;
use scalewall::cubrick::proxy::{CubrickProxy, ProxyConfig};
use scalewall::cubrick::query::parse_query;
use scalewall::cubrick::schema::SchemaBuilder;
use scalewall::cubrick::sharding::ShardMapping;
use scalewall::cubrick::value::{Row, Value};
use scalewall::shard_manager::Region;
use scalewall::sim::{SimDuration, SimRng, SimTime};
use std::sync::Arc;

fn schema() -> Arc<scalewall::cubrick::schema::Schema> {
    Arc::new(
        SchemaBuilder::new()
            .int_dim("ds", 0, 100, 10)
            .str_dim("app", 50, 10)
            .metric("events")
            .build()
            .unwrap(),
    )
}

struct Harness {
    dep: Deployment,
    proxy: CubrickProxy,
    net: NetModel,
    rng: SimRng,
    now: SimTime,
}

impl Harness {
    fn new(seed: u64) -> Self {
        let mut dep = Deployment::new(DeploymentConfig {
            regions: 3,
            hosts_per_region: 10,
            max_shards: 10_000,
            seed,
            ..Default::default()
        });
        dep.create_table(
            "events",
            schema(),
            4,
            RowMapping::Hash,
            ShardMapping::Monotonic,
            SimTime::ZERO,
        )
        .unwrap();
        let rows: Vec<Row> = (0..3_000)
            .map(|i| {
                Row::new(
                    vec![Value::Int(i % 100), Value::Str(format!("app{}", i % 7))],
                    vec![(i % 13) as f64],
                )
            })
            .collect();
        dep.ingest("events", &rows).unwrap();
        Harness {
            dep,
            proxy: CubrickProxy::new(ProxyConfig::default()),
            net: NetModel::new(NetModelConfig {
                server_failure_probability: 0.0,
                ..Default::default()
            }),
            rng: SimRng::new(seed),
            now: SimTime::from_secs(3_600),
        }
    }

    fn query(&mut self, text: &str) -> scalewall::cluster::driver::QueryOutcome {
        let q = parse_query(text).unwrap();
        self.dep.tick(self.now);
        let outcome = run_query(
            &mut self.dep,
            &mut self.proxy,
            &self.net,
            &q,
            &QueryOptions::default(),
            self.now,
            &mut self.rng,
        );
        self.now += SimDuration::from_millis(500);
        outcome
    }
}

/// Oracle: 3000 rows, events = i % 13, ds = i % 100, app = app{i%7}.
fn oracle_total_events() -> f64 {
    (0..3_000).map(|i| (i % 13) as f64).sum()
}

#[test]
fn distributed_query_matches_oracle() {
    let mut h = Harness::new(1);
    let outcome = h.query("select sum(events), count(*) from events");
    assert!(outcome.success);
    let out = outcome.output.unwrap();
    assert_eq!(out.rows[0].aggs[0], oracle_total_events());
    assert_eq!(out.rows[0].aggs[1], 3_000.0);
    assert_eq!(out.table_partitions, 4);
}

#[test]
fn filtered_group_by_matches_oracle() {
    let mut h = Harness::new(2);
    let outcome = h.query("select count(*) from events where ds between 0 and 9 group by app");
    assert!(outcome.success);
    let out = outcome.output.unwrap();
    // Oracle by brute force.
    let mut expected: std::collections::HashMap<String, f64> = Default::default();
    for i in 0..3_000i64 {
        if i % 100 <= 9 {
            *expected.entry(format!("app{}", i % 7)).or_default() += 1.0;
        }
    }
    assert_eq!(out.rows.len(), expected.len());
    for row in &out.rows {
        let key = row.key[0].as_str().unwrap();
        assert_eq!(row.aggs[0], expected[key], "group {key}");
    }
}

#[test]
fn host_failure_is_transparent_and_results_stay_exact() {
    let mut h = Harness::new(3);
    // Baseline.
    assert!(h.query("select count(*) from events").success);

    // Kill every shard-owning host's worth of one host in region 0.
    let victim = {
        let region = &h.dep.regions[0];
        region
            .nodes
            .hosts()
            .find(|&hh| !region.sm.shards_on(APP, hh).is_empty())
            .expect("an owner exists")
    };
    h.dep.fail_host(0, victim, h.now);

    // Immediately after the failure queries must still succeed (retried
    // into another region if region 0 is hit).
    for _ in 0..20 {
        let outcome = h.query("select sum(events) from events");
        assert!(outcome.success, "{:?}", outcome.error);
        assert_eq!(
            outcome.output.unwrap().rows[0].aggs[0],
            oracle_total_events()
        );
    }

    // After failover completes, region 0 serves again from a new host.
    h.now += SimDuration::from_hours(1);
    h.dep.tick(h.now);
    let shards = h.dep.catalog.read().shards_of_table("events").unwrap();
    for &s in &shards {
        let owner = h.dep.regions[0].authoritative_host(s).expect("reassigned");
        assert_ne!(owner, victim);
        assert!(h.dep.regions[0].nodes.node(owner).unwrap().shard_ready(s));
    }
    let outcome = h.query("select sum(events) from events");
    assert!(outcome.success);
}

#[test]
fn top_n_query_across_partitions() {
    let mut h = Harness::new(7);
    // Top 3 apps by count, descending — merged across all partitions,
    // then ordered and truncated at the coordinator.
    let outcome =
        h.query("select count(*) from events group by app order by count(*) desc limit 3");
    assert!(outcome.success, "{:?}", outcome.error);
    let out = outcome.output.unwrap();
    assert_eq!(out.rows.len(), 3);
    // Oracle: app{i%7} over 3000 rows → apps 0..4 get 429, apps 5,6 get
    // 428; descending counts must be non-increasing and match the top.
    assert!(out.rows[0].aggs[0] >= out.rows[1].aggs[0]);
    assert!(out.rows[1].aggs[0] >= out.rows[2].aggs[0]);
    assert_eq!(out.rows[0].aggs[0], 429.0);
    // Ascending dim order with a limit.
    let outcome = h.query("select count(*) from events group by app order by app limit 2");
    let out = outcome.output.unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(
        out.rows[0].key[0],
        scalewall::cubrick::value::Value::Str("app0".into())
    );
    assert_eq!(
        out.rows[1].key[0],
        scalewall::cubrick::value::Value::Str("app1".into())
    );
}

#[test]
fn whole_region_outage_served_by_other_regions() {
    let mut h = Harness::new(4);
    h.dep.regions[1].available = false;
    h.dep.regions[2].available = false;
    // Only region 0 is up; clients in region 1 still get answers.
    let q = parse_query("select count(*) from events").unwrap();
    let outcome = run_query(
        &mut h.dep,
        &mut h.proxy,
        &h.net,
        &q,
        &QueryOptions {
            client_region: Region(1),
            ..Default::default()
        },
        h.now,
        &mut h.rng,
    );
    assert!(outcome.success);
    assert_eq!(outcome.output.unwrap().rows[0].aggs[0], 3_000.0);
}

#[test]
fn unknown_tables_and_columns_fail_cleanly() {
    let mut h = Harness::new(5);
    assert!(!h.query("select count(*) from nope").success);
    let outcome = h.query("select sum(zz) from events");
    assert!(!outcome.success);
    assert!(matches!(
        outcome.error,
        Some(scalewall::cubrick::error::CubrickError::NoSuchColumn { .. })
    ));
    // The cluster still works afterwards.
    assert!(h.query("select count(*) from events").success);
    assert_eq!(h.proxy.active_queries(), 0, "admission slots all released");
}

#[test]
fn drop_table_stops_serving_and_frees_shards() {
    let mut h = Harness::new(6);
    let shards = h.dep.catalog.read().shards_of_table("events").unwrap();
    h.dep.drop_table("events", h.now).unwrap();
    assert!(!h.query("select count(*) from events").success);
    for region in &h.dep.regions {
        for &s in &shards {
            assert!(region.authoritative_host(s).is_none());
        }
        assert_eq!(region.store.read().partition_count(), 0);
    }
}
