//! Replay-order regression tests.
//!
//! These pin the iteration-order hazards the determinism lint (rule D2)
//! exists to prevent. Before the `HashMap` → `BTreeMap` conversions, both
//! scenarios below could diverge between two runs of the same seed: every
//! `HashMap` instance hashes with its own per-instance key, so two stores
//! holding identical logical state could iterate — and therefore emit
//! events or sum floats — in different orders. With ordered maps the
//! sequences are pinned, and this test would have caught the divergence.

use scalewall::shard_manager::balancer::{propose_rebalance, BalanceProposal};
use scalewall::shard_manager::ids::{HostId, HostInfo, HostState, Rack, Region, ShardId};
use scalewall::shard_manager::placement::HostSnapshot;
use scalewall::shard_manager::spec::BalancerConfig;
use scalewall::sim::{SimRng, SimTime};
use scalewall::zk::{
    NodeKind, WatchEventKind, WatchKind, ZkEnsemble, ZkOp, ZkReplicationConfig, ZkResp, ZkStore,
};

// ------------------------------------------------------------------ zk

/// Build a store with `n` sessions, each owning one ephemeral under
/// `/svc` with a node watch, registering everything in `order`.
fn store_with_sessions(order: &[u64]) -> ZkStore {
    let mut zk = ZkStore::default();
    let t0 = SimTime::from_secs(0);
    zk.create("/svc", b"", NodeKind::Persistent, None, t0).unwrap();
    // Session ids are assigned sequentially, so create them all first —
    // the *registration* order of ephemerals and watches then varies.
    let max = *order.iter().max().unwrap();
    let sids: Vec<_> = (0..=max).map(|_| zk.create_session(t0)).collect();
    for &i in order {
        let path = format!("/svc/member-{i}");
        zk.create(&path, b"", NodeKind::Ephemeral, Some(sids[i as usize]), t0)
            .unwrap();
        zk.watch(&path, WatchKind::Node, 100 + i).unwrap();
    }
    zk.drain_events();
    zk
}

#[test]
fn zk_watch_dispatch_order_is_identical_across_equivalent_stores() {
    // Same logical state, different construction interleavings: mass
    // expiry must fire watches in the same order in every store.
    let orders: [&[u64]; 3] = [&[0, 1, 2, 3], &[3, 2, 1, 0], &[2, 0, 3, 1]];
    let mut streams = Vec::new();
    for order in orders {
        let mut zk = store_with_sessions(order);
        let expired = zk.expire_sessions(SimTime::from_secs(1_000));
        assert_eq!(expired.len(), 4);
        streams.push((expired, zk.drain_events()));
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], streams[2]);
}

#[test]
fn zk_mass_expiry_event_sequence_is_pinned() {
    // The golden order: sessions expire in session-id order, each firing
    // the Deleted watch on its ephemeral before the parent's
    // ChildrenChanged. Any change here is a replay-contract break — see
    // crates/sim/src/rng.rs for the policy on re-deriving goldens.
    let mut zk = store_with_sessions(&[1, 3, 0, 2]);
    zk.expire_sessions(SimTime::from_secs(1_000));
    let events: Vec<(String, WatchEventKind, u64)> = zk
        .drain_events()
        .into_iter()
        .map(|e| (e.path, e.kind, e.token))
        .collect();
    let expect: Vec<(String, WatchEventKind, u64)> = (0..4)
        .map(|i| {
            (
                format!("/svc/member-{i}"),
                WatchEventKind::Deleted,
                100 + i,
            )
        })
        .collect();
    assert_eq!(events, expect);
}

#[test]
fn zk_close_session_deletes_ephemerals_in_path_order() {
    // One session owning several ephemerals registered out of order:
    // explicit close must delete them in ascending-path order — the one
    // pinned order shared by close, mass expiry, and the replicated
    // apply path (`ZkStore::close_session_inner`).
    let t0 = SimTime::from_secs(0);
    let mut zk = ZkStore::default();
    zk.create("/svc", b"", NodeKind::Persistent, None, t0).unwrap();
    let sid = zk.create_session(t0);
    for name in ["c", "a", "b"] {
        let path = format!("/svc/{name}");
        zk.create(&path, b"", NodeKind::Ephemeral, Some(sid), t0).unwrap();
        zk.watch(&path, WatchKind::Node, name.as_bytes()[0] as u64).unwrap();
    }
    zk.drain_events();
    zk.close_session(sid, SimTime::from_secs(1));
    let single: Vec<(String, WatchEventKind, u64)> = zk
        .drain_events()
        .into_iter()
        .map(|e| (e.path, e.kind, e.token))
        .collect();
    let expect: Vec<(String, WatchEventKind, u64)> = ["a", "b", "c"]
        .iter()
        .map(|n| {
            (
                format!("/svc/{n}"),
                WatchEventKind::Deleted,
                n.as_bytes()[0] as u64,
            )
        })
        .collect();
    assert_eq!(single, expect, "close_session must delete in path order");

    // The replicated apply path shares the same order: a CloseSession op
    // committed through an ensemble yields the identical event stream.
    let cfg = ZkReplicationConfig::default();
    let mut ens = ZkEnsemble::new(&cfg);
    ens.submit_to(
        0,
        ZkOp::Create {
            path: "/svc".into(),
            data: vec![],
            kind: NodeKind::Persistent,
            session: None,
        },
        t0,
    )
    .unwrap();
    let rsid = match ens.submit_to(0, ZkOp::CreateSession, t0).unwrap() {
        ZkResp::Session(s) => s,
        other => panic!("{other:?}"),
    };
    for name in ["c", "a", "b"] {
        ens.submit_to(
            0,
            ZkOp::Create {
                path: format!("/svc/{name}"),
                data: vec![],
                kind: NodeKind::Ephemeral,
                session: Some(rsid),
            },
            t0,
        )
        .unwrap();
        ens.submit_to(
            0,
            ZkOp::Watch {
                path: format!("/svc/{name}"),
                kind: WatchKind::Node,
                token: name.as_bytes()[0] as u64,
            },
            t0,
        )
        .unwrap();
    }
    ens.submit_to(0, ZkOp::DrainEvents, t0).unwrap();
    ens.submit_to(0, ZkOp::CloseSession { session: rsid }, SimTime::from_secs(1))
        .unwrap();
    let replicated: Vec<(String, WatchEventKind, u64)> =
        match ens.submit_to(0, ZkOp::DrainEvents, SimTime::from_secs(1)).unwrap() {
            ZkResp::Events(evs) => evs.into_iter().map(|e| (e.path, e.kind, e.token)).collect(),
            other => panic!("{other:?}"),
        };
    assert_eq!(replicated, expect, "replicated close must share the pinned order");
}

// ------------------------------------------------------------ balancer

fn snap(id: u64, capacity: f64, load: f64) -> HostSnapshot {
    HostSnapshot {
        info: HostInfo::new(HostId(id), Rack(0), Region(0), capacity),
        state: HostState::Alive,
        load,
    }
}

#[test]
fn balancer_proposals_are_invariant_under_input_permutation() {
    // A deliberately tie-heavy fleet: equal capacities, equal weights,
    // several equally-loaded donors/receivers. Candidate enumeration must
    // resolve ties by id, never by memory or hash layout.
    let mut rng = SimRng::new(0xB41A);
    let hosts: Vec<HostSnapshot> = (0..12)
        .map(|i| snap(i, 100.0, if i < 4 { 90.0 } else { 10.0 }))
        .collect();
    let mut locations: Vec<(ShardId, HostId, f64)> = (0..36)
        .map(|s| (ShardId(s), HostId(s % 4), 10.0))
        .collect();
    let config = BalancerConfig {
        max_migrations_per_run: 16,
        ..BalancerConfig::default()
    };

    let baseline: Vec<BalanceProposal> = propose_rebalance(&hosts, &locations, &config);
    assert!(!baseline.is_empty(), "scenario must actually rebalance");

    for _ in 0..8 {
        let mut shuffled_hosts = hosts.clone();
        rng.shuffle(&mut shuffled_hosts);
        rng.shuffle(&mut locations);
        let proposals = propose_rebalance(&shuffled_hosts, &locations, &config);
        assert_eq!(
            proposals, baseline,
            "proposals changed under input permutation"
        );
    }
}
