//! Umbrella crate re-exporting the full `scalewall` stack.
pub use cubrick;
pub use scalewall_cluster as cluster;
pub use scalewall_discovery as discovery;
pub use scalewall_shard_manager as shard_manager;
pub use scalewall_sim as sim;
pub use scalewall_zk as zk;
